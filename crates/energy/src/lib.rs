#![warn(missing_docs)]

//! Orion-style router energy model (Wang et al., MICRO 2002) for the
//! pseudo-circuit reproduction.
//!
//! The paper reports per-component energy at 45 nm in its Table II: the
//! crossbar costs 6.38 pJ per traversal and the component shares of total
//! router energy are 23.4% (buffers), 76.22% (crossbar) and 0.24% (arbiters).
//! Solving the shares against the crossbar figure yields a buffer cost of
//! ≈ 1.96 pJ per flit (split evenly between write and read) and an arbiter
//! cost of ≈ 0.02 pJ per arbitration — the constants adopted here (see
//! DESIGN.md §5; the OCR of the paper truncates the two smaller numbers).
//!
//! Energy accounting is event-based: the router calls
//! [`EnergyCounters::record`] for every buffer write, buffer read, crossbar
//! traversal and arbitration; [`EnergyModel::total_pj`] converts the counters
//! into picojoules. Only *relative* energy matters for the paper's Fig. 11
//! (it is normalized to the baseline router).
//!
//! # Example
//!
//! ```
//! use noc_energy::{EnergyCounters, EnergyEvent, EnergyModel};
//!
//! let model = EnergyModel::paper_45nm();
//! let mut counters = EnergyCounters::default();
//! counters.record(EnergyEvent::BufferWrite);
//! counters.record(EnergyEvent::BufferRead);
//! counters.record(EnergyEvent::CrossbarTraversal);
//! counters.record(EnergyEvent::Arbitration);
//! let total = model.total_pj(&counters);
//! assert!((total - (0.98 + 0.98 + 6.38 + 0.02)).abs() < 1e-9);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign};

/// A single energy-consuming micro-event inside a router.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum EnergyEvent {
    /// A flit written into an input-VC buffer.
    BufferWrite,
    /// A flit read out of an input-VC buffer for switch traversal.
    BufferRead,
    /// A flit passing through the crossbar.
    CrossbarTraversal,
    /// One switch/VC arbitration performed for a flit.
    Arbitration,
}

/// Event counts accumulated by one router (or summed over a network).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct EnergyCounters {
    /// Number of buffer writes.
    pub buffer_writes: u64,
    /// Number of buffer reads.
    pub buffer_reads: u64,
    /// Number of crossbar traversals.
    pub crossbar_traversals: u64,
    /// Number of arbitrations.
    pub arbitrations: u64,
}

impl EnergyCounters {
    /// Records one event.
    #[inline]
    pub fn record(&mut self, event: EnergyEvent) {
        match event {
            EnergyEvent::BufferWrite => self.buffer_writes += 1,
            EnergyEvent::BufferRead => self.buffer_reads += 1,
            EnergyEvent::CrossbarTraversal => self.crossbar_traversals += 1,
            EnergyEvent::Arbitration => self.arbitrations += 1,
        }
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

impl Add for EnergyCounters {
    type Output = EnergyCounters;

    fn add(self, rhs: EnergyCounters) -> EnergyCounters {
        EnergyCounters {
            buffer_writes: self.buffer_writes + rhs.buffer_writes,
            buffer_reads: self.buffer_reads + rhs.buffer_reads,
            crossbar_traversals: self.crossbar_traversals + rhs.crossbar_traversals,
            arbitrations: self.arbitrations + rhs.arbitrations,
        }
    }
}

impl AddAssign for EnergyCounters {
    fn add_assign(&mut self, rhs: EnergyCounters) {
        *self = *self + rhs;
    }
}

/// Per-event energy constants in picojoules.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct EnergyModel {
    /// Energy per buffer write (pJ).
    pub buffer_write_pj: f64,
    /// Energy per buffer read (pJ).
    pub buffer_read_pj: f64,
    /// Energy per crossbar traversal (pJ).
    pub crossbar_pj: f64,
    /// Energy per arbitration (pJ).
    pub arbiter_pj: f64,
}

impl EnergyModel {
    /// The 45 nm constants reconstructed from the paper's Table II.
    pub fn paper_45nm() -> Self {
        Self {
            buffer_write_pj: 0.98,
            buffer_read_pj: 0.98,
            crossbar_pj: 6.38,
            arbiter_pj: 0.02,
        }
    }

    /// Total energy in picojoules for the recorded events.
    pub fn total_pj(&self, counters: &EnergyCounters) -> f64 {
        self.breakdown(counters).total()
    }

    /// Per-component energy for the recorded events.
    pub fn breakdown(&self, counters: &EnergyCounters) -> EnergyBreakdown {
        EnergyBreakdown {
            buffer_pj: counters.buffer_writes as f64 * self.buffer_write_pj
                + counters.buffer_reads as f64 * self.buffer_read_pj,
            crossbar_pj: counters.crossbar_traversals as f64 * self.crossbar_pj,
            arbiter_pj: counters.arbitrations as f64 * self.arbiter_pj,
        }
    }

    /// The steady-state component shares for a flit that is written, read,
    /// traverses the crossbar, and is arbitrated exactly once per hop —
    /// reproduces the percentage row of the paper's Table II.
    pub fn reference_shares(&self) -> EnergyBreakdown {
        let mut counters = EnergyCounters::default();
        counters.record(EnergyEvent::BufferWrite);
        counters.record(EnergyEvent::BufferRead);
        counters.record(EnergyEvent::CrossbarTraversal);
        counters.record(EnergyEvent::Arbitration);
        self.breakdown(&counters)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_45nm()
    }
}

/// Energy split by router component, in picojoules.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct EnergyBreakdown {
    /// Buffer (read + write) energy.
    pub buffer_pj: f64,
    /// Crossbar energy.
    pub crossbar_pj: f64,
    /// Arbiter energy.
    pub arbiter_pj: f64,
}

impl EnergyBreakdown {
    /// Total across components.
    pub fn total(&self) -> f64 {
        self.buffer_pj + self.crossbar_pj + self.arbiter_pj
    }

    /// Component shares as fractions of the total (0 when the total is 0).
    pub fn shares(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.buffer_pj / t,
            self.crossbar_pj / t,
            self.arbiter_pj / t,
        )
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (b, x, a) = self.shares();
        write!(
            f,
            "buffer {:.2} pJ ({:.1}%), crossbar {:.2} pJ ({:.1}%), arbiter {:.2} pJ ({:.1}%)",
            self.buffer_pj,
            b * 100.0,
            self.crossbar_pj,
            x * 100.0,
            self.arbiter_pj,
            a * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_shares_are_reproduced() {
        let model = EnergyModel::paper_45nm();
        let (buffer, crossbar, arbiter) = model.reference_shares().shares();
        // Paper Table II: 23.4% / 76.22% / 0.24%.
        assert!((buffer - 0.234).abs() < 0.005, "buffer share {buffer}");
        assert!(
            (crossbar - 0.7622).abs() < 0.005,
            "crossbar share {crossbar}"
        );
        assert!((arbiter - 0.0024).abs() < 0.001, "arbiter share {arbiter}");
    }

    #[test]
    fn counters_accumulate_and_add() {
        let mut a = EnergyCounters::default();
        assert!(a.is_empty());
        a.record(EnergyEvent::BufferWrite);
        a.record(EnergyEvent::BufferWrite);
        a.record(EnergyEvent::CrossbarTraversal);
        let mut b = EnergyCounters::default();
        b.record(EnergyEvent::BufferRead);
        b.record(EnergyEvent::Arbitration);
        let sum = a + b;
        assert_eq!(sum.buffer_writes, 2);
        assert_eq!(sum.buffer_reads, 1);
        assert_eq!(sum.crossbar_traversals, 1);
        assert_eq!(sum.arbitrations, 1);
        a += b;
        assert_eq!(a, sum);
    }

    #[test]
    fn bypassed_flit_saves_buffer_energy() {
        // A buffer-bypassed flit is charged only the crossbar, saving the
        // paper's ~23.6% per hop.
        let model = EnergyModel::paper_45nm();
        let mut normal = EnergyCounters::default();
        normal.record(EnergyEvent::BufferWrite);
        normal.record(EnergyEvent::BufferRead);
        normal.record(EnergyEvent::CrossbarTraversal);
        normal.record(EnergyEvent::Arbitration);
        let mut bypassed = EnergyCounters::default();
        bypassed.record(EnergyEvent::CrossbarTraversal);
        let saving = 1.0 - model.total_pj(&bypassed) / model.total_pj(&normal);
        assert!((saving - 0.2378).abs() < 0.01, "saving {saving}");
    }

    #[test]
    fn empty_breakdown_has_zero_shares() {
        let model = EnergyModel::paper_45nm();
        let b = model.breakdown(&EnergyCounters::default());
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.shares(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn display_mentions_all_components() {
        let model = EnergyModel::paper_45nm();
        let text = model.reference_shares().to_string();
        assert!(text.contains("buffer"));
        assert!(text.contains("crossbar"));
        assert!(text.contains("arbiter"));
    }
}
