//! Property-based tests for topology wiring and routing: every generated
//! topology validates, and dimension-order routing always reaches the
//! destination in exactly the minimal hop count, never using a dead channel.

use noc_base::{NodeId, RouteMode};
use noc_topology::{
    validate, walk_route, FlattenedButterfly, HierRing, Mecs, Mesh, Ring, Topology,
};
use proptest::prelude::*;

fn check_topology(topo: &dyn Topology, pairs: &[(usize, usize)]) -> Result<(), TestCaseError> {
    prop_assert!(validate(topo).is_ok(), "{} failed validation", topo.name());
    for &(s, d) in pairs {
        let src = NodeId::new(s % topo.num_nodes());
        let dst = NodeId::new(d % topo.num_nodes());
        for mode in [RouteMode::XY, RouteMode::YX] {
            let path = walk_route(topo, src, dst, mode);
            prop_assert_eq!(
                path.len() as u32 - 1,
                topo.min_hops(src, dst),
                "{}: {}->{} via {:?}",
                topo.name(),
                src,
                dst,
                mode
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mesh_routes_are_minimal(
        w in 1u16..7,
        h in 1u16..7,
        c in 1usize..5,
        pairs in prop::collection::vec((0usize..4096, 0usize..4096), 8),
    ) {
        let topo = Mesh::new(w, h, c);
        check_topology(&topo, &pairs)?;
    }

    #[test]
    fn fbfly_routes_are_minimal(
        w in 1u16..6,
        h in 1u16..6,
        c in 1usize..5,
        pairs in prop::collection::vec((0usize..4096, 0usize..4096), 8),
    ) {
        let topo = FlattenedButterfly::new(w, h, c);
        check_topology(&topo, &pairs)?;
    }

    #[test]
    fn mecs_routes_are_minimal(
        w in 1u16..6,
        h in 1u16..6,
        c in 1usize..5,
        pairs in prop::collection::vec((0usize..4096, 0usize..4096), 8),
    ) {
        let topo = Mecs::new(w, h, c);
        check_topology(&topo, &pairs)?;
    }

    /// Ring routes (under the topology's own mode selection rather than the
    /// XY/YX vocabulary) always walk exactly `min_hops`, and the dateline
    /// class is within the topology's declared class count.
    #[test]
    fn ring_routes_are_minimal(
        n in 2usize..17,
        c in 1usize..5,
        pairs in prop::collection::vec((0usize..4096, 0usize..4096), 8),
    ) {
        let topo = Ring::new(n, c);
        prop_assert!(validate(&topo).is_ok(), "{} failed validation", topo.name());
        for (s, d) in pairs {
            let src = NodeId::new(s % topo.num_nodes());
            let dst = NodeId::new(d % topo.num_nodes());
            let mode = topo.select_mode(src, dst, RouteMode::default());
            let path = walk_route(&topo, src, dst, mode);
            prop_assert_eq!(path.len() as u32 - 1, topo.min_hops(src, dst));
            let class = topo.mode_class(noc_base::RoutingPolicy::Xy, src, dst, mode);
            prop_assert!(class < topo.min_classes());
        }
    }

    /// Hierarchical-ring routes converge and walk exactly the routed
    /// distance the topology reports.
    #[test]
    fn hier_ring_routes_walk_their_stated_distance(
        g in 2usize..5,
        l in 2usize..7,
        c in 1usize..4,
        pairs in prop::collection::vec((0usize..4096, 0usize..4096), 8),
    ) {
        let topo = HierRing::new(g, l, c);
        prop_assert!(validate(&topo).is_ok(), "{} failed validation", topo.name());
        for (s, d) in pairs {
            let src = NodeId::new(s % topo.num_nodes());
            let dst = NodeId::new(d % topo.num_nodes());
            let mode = topo.select_mode(src, dst, RouteMode::default());
            let path = walk_route(&topo, src, dst, mode);
            prop_assert_eq!(path.len() as u32 - 1, topo.min_hops(src, dst));
        }
    }

    #[test]
    fn express_topologies_never_exceed_two_hops(
        w in 2u16..6,
        h in 2u16..6,
        s in 0usize..4096,
        d in 0usize..4096,
    ) {
        for topo in [
            Box::new(FlattenedButterfly::new(w, h, 2)) as Box<dyn Topology>,
            Box::new(Mecs::new(w, h, 2)),
        ] {
            let src = NodeId::new(s % topo.num_nodes());
            let dst = NodeId::new(d % topo.num_nodes());
            prop_assert!(topo.min_hops(src, dst) <= 2);
        }
    }

    #[test]
    fn node_attachment_is_a_bijection(w in 1u16..6, h in 1u16..6, c in 1usize..5) {
        let topo = Mesh::new(w, h, c);
        let mut seen = std::collections::HashSet::new();
        for n in 0..topo.num_nodes() {
            let node = NodeId::new(n);
            let key = (topo.router_of(node), topo.local_port(node));
            prop_assert!(seen.insert(key), "two nodes share a local port");
            prop_assert_eq!(topo.node_at(key.0, key.1), Some(node));
        }
    }
}
