//! Property-based tests for the flattened wiring tables: for every generated
//! topology, [`FlatWiring`] and [`DistanceMatrix`] must agree with the
//! dynamic [`Topology`] trait at every (router, port) and node pair — the
//! tables are exactly the lookups the engine no longer performs per event,
//! so any disagreement here is a miswired network.

use noc_base::{NodeId, PortIndex, RouterId};
use noc_topology::{
    DistanceMatrix, FlatWiring, FlattenedButterfly, Mecs, Mesh, PortFeeder, Topology,
};
use proptest::prelude::*;

/// Checks the forward table (`link`), the eject/attach maps, and — by
/// inverting the topology's own link enumeration — the reverse (credit-sink)
/// table, for every single (router, port) of `topo`.
fn check_wiring(topo: &dyn Topology) -> Result<(), TestCaseError> {
    let wiring = FlatWiring::new(topo);
    prop_assert_eq!(wiring.concentration(), topo.concentration());

    for r in 0..topo.num_routers() {
        let router = RouterId::new(r);
        prop_assert_eq!(wiring.in_ports(router), topo.in_ports(router));
        prop_assert_eq!(wiring.out_ports(router), topo.out_ports(router));

        // Forward wiring: every connected (out channel, drop position).
        for out in topo.concentration()..topo.out_ports(router) {
            let out_port = PortIndex::new(out);
            for hop in 1..=topo.channel_len(router, out_port) {
                if let Some(end) = topo.link(router, out_port, hop) {
                    prop_assert_eq!(
                        wiring.link(router, out_port, hop),
                        end,
                        "forward table diverges at {} {} hop {}",
                        router,
                        out_port,
                        hop
                    );
                }
            }
        }

        // Reverse wiring: every input port's feeder must be the unique
        // channel position (or node) that the topology wires into it.
        for p in 0..topo.in_ports(router) {
            let in_port = PortIndex::new(p);
            let expected = expected_feeder(topo, router, in_port);
            prop_assert_eq!(
                wiring.feeder(router, in_port),
                expected,
                "credit-sink table diverges at {} {}",
                router,
                in_port
            );
        }

        // Eject map over every local port.
        for p in 0..topo.concentration() {
            let port = PortIndex::new(p);
            prop_assert_eq!(wiring.eject_node(router, port), topo.node_at(router, port));
        }
    }

    for n in 0..topo.num_nodes() {
        let node = NodeId::new(n);
        prop_assert_eq!(
            wiring.attach_of(node),
            (topo.router_of(node), topo.local_port(node))
        );
    }
    Ok(())
}

/// The feeder of `(router, in_port)` derived directly from the topology, by
/// exhaustive search over all channels (the slow ground truth the flat table
/// must reproduce).
fn expected_feeder(topo: &dyn Topology, router: RouterId, in_port: PortIndex) -> PortFeeder {
    if in_port.index() < topo.concentration() {
        if let Some(node) = topo.node_at(router, in_port) {
            return PortFeeder::Node(node);
        }
    }
    for r in 0..topo.num_routers() {
        let up = RouterId::new(r);
        for out in topo.concentration()..topo.out_ports(up) {
            let out_port = PortIndex::new(out);
            for hop in 1..=topo.channel_len(up, out_port) {
                if let Some(end) = topo.link(up, out_port, hop) {
                    if end.router == router && end.port == in_port {
                        return PortFeeder::Channel {
                            router: up,
                            out_port,
                            sub: hop - 1,
                        };
                    }
                }
            }
        }
    }
    PortFeeder::None
}

fn check_distances(topo: &dyn Topology) -> Result<(), TestCaseError> {
    let dist = DistanceMatrix::new(topo);
    prop_assert_eq!(dist.num_nodes(), topo.num_nodes());
    for s in 0..topo.num_nodes() {
        for d in 0..topo.num_nodes() {
            let (src, dst) = (NodeId::new(s), NodeId::new(d));
            prop_assert_eq!(
                dist.get(src, dst),
                topo.min_hops(src, dst),
                "distance matrix diverges for {} -> {}",
                src,
                dst
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mesh_wiring_tables_match_topology(w in 1u16..6, h in 1u16..6, c in 1usize..5) {
        let topo = Mesh::new(w, h, c);
        check_wiring(&topo)?;
        check_distances(&topo)?;
    }

    #[test]
    fn fbfly_wiring_tables_match_topology(w in 1u16..5, h in 1u16..5, c in 1usize..4) {
        let topo = FlattenedButterfly::new(w, h, c);
        check_wiring(&topo)?;
        check_distances(&topo)?;
    }

    #[test]
    fn mecs_wiring_tables_match_topology(w in 1u16..5, h in 1u16..5, c in 1usize..4) {
        let topo = Mecs::new(w, h, c);
        check_wiring(&topo)?;
        check_distances(&topo)?;
    }
}
