//! MECS — Multidrop Express Cube (Grot, Hestness, Keckler & Mutlu, HPCA 2009).
//!
//! Each router drives one *multidrop* express channel per cardinal direction;
//! the channel passes every router further along that direction and a flit
//! drops off at the router its route selects. Receivers have a dedicated
//! input port per upstream source on each side, so input ports outnumber
//! output ports (the defining asymmetry of MECS: point-to-multipoint channels
//! with a bandwidth-efficient shared output).
//!
//! Like the flattened butterfly, any dimension-order route takes at most two
//! network hops; unlike it, all traffic leaving a router in one direction
//! shares a single output port, which is what keeps crossbar complexity below
//! the flattened butterfly's (§VII.A of the pseudo-circuit paper).

use crate::{LinkEnd, Topology};
use noc_base::{Coord, NodeId, PortIndex, RouteInfo, RouteMode, RouterId};

/// Direction of the four multidrop output channels; the output port for
/// direction `d` is `concentration + d as usize` (same order as the mesh).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Dir {
    North = 0,
    East = 1,
    South = 2,
    West = 3,
}

impl Dir {
    fn from_port(port: PortIndex, concentration: usize) -> Option<Dir> {
        match port.index().checked_sub(concentration)? {
            0 => Some(Dir::North),
            1 => Some(Dir::East),
            2 => Some(Dir::South),
            3 => Some(Dir::West),
            _ => None,
        }
    }
}

/// A `width × height` MECS network with `concentration` nodes per router.
#[derive(Clone, Debug)]
pub struct Mecs {
    width: u16,
    height: u16,
    concentration: usize,
    name: String,
}

impl Mecs {
    /// Creates a MECS network.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the concentration is zero.
    pub fn new(width: u16, height: u16, concentration: usize) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be nonzero");
        assert!(concentration > 0, "concentration must be nonzero");
        Self {
            width,
            height,
            concentration,
            name: format!("mecs{width}x{height}c{concentration}"),
        }
    }

    /// Coordinate of a router.
    pub fn coord(&self, router: RouterId) -> Coord {
        Coord::from_index(router.index(), self.width)
    }

    /// Router at a coordinate.
    pub fn router_at(&self, coord: Coord) -> RouterId {
        RouterId::new(coord.to_index(self.width))
    }

    /// Input port at the router at `at` for a flit that travelled `dist`
    /// positions along a channel coming from the `origin` side.
    ///
    /// Input-port layout at (x, y): local ports, then one port per upstream
    /// source grouped by origin side — West sources (x of them), East sources
    /// (width-1-x), North sources (y), South sources (height-1-y) — each
    /// group ordered by source distance.
    fn in_port(&self, at: Coord, origin: Dir, dist: u8) -> PortIndex {
        debug_assert!(dist >= 1);
        let west = at.x as usize;
        let east = (self.width - 1 - at.x) as usize;
        let north = at.y as usize;
        let c = self.concentration;
        let offset = match origin {
            Dir::West => c,
            Dir::East => c + west,
            Dir::North => c + west + east,
            Dir::South => c + west + east + north,
        };
        PortIndex::new(offset + dist as usize - 1)
    }

    fn dir_channel_len(&self, at: Coord, dir: Dir) -> u8 {
        (match dir {
            Dir::North => at.y,
            Dir::South => self.height - 1 - at.y,
            Dir::West => at.x,
            Dir::East => self.width - 1 - at.x,
        }) as u8
    }
}

impl Topology for Mecs {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_routers(&self) -> usize {
        self.width as usize * self.height as usize
    }

    fn num_nodes(&self) -> usize {
        self.num_routers() * self.concentration
    }

    fn concentration(&self) -> usize {
        self.concentration
    }

    fn in_ports(&self, _router: RouterId) -> usize {
        // Constant per router: one input per source in the row plus one per
        // source in the column.
        self.concentration + (self.width as usize - 1) + (self.height as usize - 1)
    }

    fn out_ports(&self, _router: RouterId) -> usize {
        self.concentration + 4
    }

    fn channel_len(&self, router: RouterId, out: PortIndex) -> u8 {
        if out.index() < self.concentration {
            return 1;
        }
        match Dir::from_port(out, self.concentration) {
            Some(dir) => self.dir_channel_len(self.coord(router), dir),
            None => 0,
        }
    }

    fn link(&self, router: RouterId, out: PortIndex, hop: u8) -> Option<LinkEnd> {
        if hop == 0 || out.index() < self.concentration {
            return None;
        }
        let from = self.coord(router);
        let dir = Dir::from_port(out, self.concentration)?;
        if hop > self.dir_channel_len(from, dir) {
            return None;
        }
        let to = match dir {
            Dir::North => Coord::new(from.x, from.y - hop as u16),
            Dir::South => Coord::new(from.x, from.y + hop as u16),
            Dir::West => Coord::new(from.x - hop as u16, from.y),
            Dir::East => Coord::new(from.x + hop as u16, from.y),
        };
        // A flit travelling East arrives from the West side, etc.
        let origin = match dir {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::East => Dir::West,
            Dir::West => Dir::East,
        };
        Some(LinkEnd {
            router: self.router_at(to),
            port: self.in_port(to, origin, hop),
        })
    }

    fn route(&self, at: RouterId, dst: NodeId, mode: RouteMode) -> RouteInfo {
        assert!(dst.index() < self.num_nodes(), "destination out of range");
        let from = self.coord(at);
        let to = self.coord(self.router_of(dst));
        let c = self.concentration;
        let x_step = || {
            (from.x != to.x).then(|| {
                let (dir, hops) = if to.x > from.x {
                    (Dir::East, to.x - from.x)
                } else {
                    (Dir::West, from.x - to.x)
                };
                RouteInfo::multidrop(PortIndex::new(c + dir as usize), hops as u8)
            })
        };
        let y_step = || {
            (from.y != to.y).then(|| {
                let (dir, hops) = if to.y > from.y {
                    (Dir::South, to.y - from.y)
                } else {
                    (Dir::North, from.y - to.y)
                };
                RouteInfo::multidrop(PortIndex::new(c + dir as usize), hops as u8)
            })
        };
        // Unknown variants route X-first, matching the default mode.
        let step = if mode == RouteMode::YX {
            y_step().or_else(x_step)
        } else {
            x_step().or_else(y_step)
        };
        step.unwrap_or_else(|| RouteInfo::new(self.local_port(dst)))
    }

    fn min_hops(&self, src: NodeId, dst: NodeId) -> u32 {
        let a = self.coord(self.router_of(src));
        let b = self.coord(self.router_of(dst));
        u32::from(a.x != b.x) + u32::from(a.y != b.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, walk_route};

    #[test]
    fn wiring_is_consistent() {
        for (w, h, c) in [(2, 2, 1), (4, 4, 4), (3, 5, 2)] {
            let t = Mecs::new(w, h, c);
            validate(&t).unwrap_or_else(|e| panic!("{w}x{h}c{c}: {e}"));
        }
    }

    #[test]
    fn input_port_count_is_constant() {
        let t = Mecs::new(4, 4, 4);
        for r in 0..t.num_routers() {
            assert_eq!(t.in_ports(RouterId::new(r)), 4 + 3 + 3);
            assert_eq!(t.out_ports(RouterId::new(r)), 4 + 4);
        }
    }

    #[test]
    fn channel_lengths_match_grid_position() {
        let t = Mecs::new(4, 4, 1);
        let r = RouterId::new(5); // (1,1)
        assert_eq!(t.channel_len(r, PortIndex::new(1)), 1); // North: y=1
        assert_eq!(t.channel_len(r, PortIndex::new(2)), 2); // East: 4-1-1
        assert_eq!(t.channel_len(r, PortIndex::new(3)), 2); // South
        assert_eq!(t.channel_len(r, PortIndex::new(4)), 1); // West
    }

    #[test]
    fn multidrop_reaches_each_position() {
        let t = Mecs::new(4, 1, 1);
        let r0 = RouterId::new(0);
        let east = PortIndex::new(2);
        for hop in 1..=3u8 {
            let end = t.link(r0, east, hop).expect("drop position");
            assert_eq!(end.router.index(), hop as usize);
        }
        assert!(t.link(r0, east, 4).is_none());
    }

    #[test]
    fn distinct_sources_use_distinct_input_ports() {
        let t = Mecs::new(4, 1, 1);
        let r3 = RouterId::new(3);
        // Routers 0, 1, 2 all send eastbound to router 3.
        let mut ports = std::collections::HashSet::new();
        for src in 0..3usize {
            let hop = (3 - src) as u8;
            let end = t.link(RouterId::new(src), PortIndex::new(2), hop).unwrap();
            assert_eq!(end.router, r3);
            ports.insert(end.port);
        }
        assert_eq!(ports.len(), 3);
    }

    #[test]
    fn routes_take_at_most_two_hops() {
        let t = Mecs::new(4, 4, 4);
        for s in (0..t.num_nodes()).step_by(3) {
            for d in (0..t.num_nodes()).step_by(5) {
                for mode in [RouteMode::XY, RouteMode::YX] {
                    let path = walk_route(&t, NodeId::new(s), NodeId::new(d), mode);
                    assert!(path.len() <= 3, "{s}->{d}: {path:?}");
                    assert_eq!(
                        path.len() as u32 - 1,
                        t.min_hops(NodeId::new(s), NodeId::new(d))
                    );
                }
            }
        }
    }

    #[test]
    fn route_encodes_drop_distance() {
        let t = Mecs::new(4, 4, 1);
        // (0,0) to (3,0): single eastbound express hop of distance 3.
        let route = t.route(RouterId::new(0), NodeId::new(3), RouteMode::XY);
        assert_eq!(route.hops, 3);
        assert_eq!(route.port, PortIndex::new(2));
    }
}
