//! Bidirectional ring and hierarchical two-level ring.
//!
//! The ring family exercises the topology-neutral [`RouteMode`] abstraction:
//! instead of the mesh's XY/YX dimension orders, a ring packet's mode is its
//! travel direction (clockwise or counter-clockwise), chosen per packet by
//! shortest distance in [`Topology::select_mode`], and its deadlock class is
//! a *dateline* class ([`Topology::mode_class`]): packets whose path crosses
//! the wrap-around edge of their direction travel in VC class 1, all others
//! in class 0 (cf. Wu's low-cost ring router microarchitecture, which the
//! campaign layer compares against the mesh families).
//!
//! # Deadlock freedom
//!
//! Clockwise and counter-clockwise packets use disjoint channel sets (the CW
//! and CCW output ports), so each direction is analyzed alone. Within one
//! direction, class-0 packets never use the wrap edge, so their channel
//! dependency graph is an acyclic chain. Class-1 packets all cross the wrap
//! edge and are at most `⌊N/2⌋` hops long, so the edge `⌊N/2⌋-1 → ⌊N/2⌋`
//! (relative to the CW wrap `N-1 → 0`; symmetrically for CCW) can never be
//! part of any class-1 path — the class-1 dependency graph is missing an
//! edge of the cycle and is therefore acyclic as well.
//!
//! The hierarchical ring routes inter-group packets in a third mode that is
//! wrap-free on every segment (local ring down to the hub, hub ring by index
//! comparison, local ring out to the destination), so inter-group traffic
//! shares class 0 with wrap-free local traffic and the combined class-0
//! dependency graph stays a DAG. Hub-ring paths take `|g - g'|` hops rather
//! than the ring-shortest direction — a deliberate correctness-over-
//! optimality trade documented in DESIGN.md.

use crate::{LinkEnd, Topology};
use noc_base::{NodeId, PortIndex, RouteInfo, RouteMode, RouterId, RoutingPolicy};

/// Clockwise travel (router `r` to `(r + 1) % N`): raw mode 0, so the
/// policy-default [`RouteMode::XY`] maps onto it unchanged.
pub const RING_CW: RouteMode = RouteMode::XY;
/// Counter-clockwise travel (router `r` to `(r - 1) mod N`): raw mode 1.
pub const RING_CCW: RouteMode = RouteMode::YX;
/// Hierarchical-ring inter-group mode: local ring to the hub, hub ring to
/// the destination group, local ring outward. Raw mode 2 — outside the
/// XY/YX vocabulary, which is exactly what the opaque `RouteMode` buys.
pub const RING_INTER: RouteMode = RouteMode::from_raw(2);

/// Shortest-direction mode on a ring of `n` routers from `from` to `to`:
/// clockwise when the CW distance is at most half the ring (ties go CW).
fn shortest_dir(n: usize, from: usize, to: usize) -> RouteMode {
    let cw = (to + n - from) % n;
    if cw * 2 <= n {
        RING_CW
    } else {
        RING_CCW
    }
}

/// Dateline class on a ring of `n` routers: 1 when the path from `from` to
/// `to` in direction `mode` crosses that direction's wrap edge (CW wrap
/// `n-1 → 0`, CCW wrap `0 → n-1`), else 0.
fn dateline_class(from: usize, to: usize, mode: RouteMode) -> u8 {
    if from == to {
        return 0;
    }
    let crosses = if mode == RING_CCW {
        to > from
    } else {
        to < from
    };
    u8::from(crosses)
}

/// A bidirectional ring of `n` routers with `concentration` nodes each.
///
/// Ports on every router: locals `0..concentration`, then the clockwise
/// port (`concentration`) toward router `(r + 1) % n` and the
/// counter-clockwise port (`concentration + 1`) toward `(r - 1) mod n`.
/// A clockwise link lands on the receiver's counter-clockwise-facing input
/// port and vice versa, mirroring the mesh convention that a link arrives on
/// the port that faces back toward its sender.
#[derive(Clone, Debug)]
pub struct Ring {
    n: usize,
    concentration: usize,
    name: String,
}

impl Ring {
    /// Creates a ring.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the concentration is zero.
    pub fn new(n: usize, concentration: usize) -> Self {
        assert!(n >= 2, "a ring needs at least two routers");
        assert!(concentration > 0, "concentration must be nonzero");
        let name = if concentration == 1 {
            format!("ring{n}")
        } else {
            format!("ring{n}c{concentration}")
        };
        Self {
            n,
            concentration,
            name,
        }
    }

    fn cw_port(&self) -> PortIndex {
        PortIndex::new(self.concentration)
    }

    fn ccw_port(&self) -> PortIndex {
        PortIndex::new(self.concentration + 1)
    }
}

impl Topology for Ring {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_routers(&self) -> usize {
        self.n
    }

    fn num_nodes(&self) -> usize {
        self.n * self.concentration
    }

    fn concentration(&self) -> usize {
        self.concentration
    }

    fn in_ports(&self, _router: RouterId) -> usize {
        self.concentration + 2
    }

    fn out_ports(&self, _router: RouterId) -> usize {
        self.concentration + 2
    }

    fn channel_len(&self, _router: RouterId, out: PortIndex) -> u8 {
        u8::from(out.index() < self.concentration + 2)
    }

    fn link(&self, router: RouterId, out: PortIndex, hop: u8) -> Option<LinkEnd> {
        if hop != 1 {
            return None;
        }
        let r = router.index();
        if out == self.cw_port() {
            Some(LinkEnd {
                router: RouterId::new((r + 1) % self.n),
                port: self.ccw_port(),
            })
        } else if out == self.ccw_port() {
            Some(LinkEnd {
                router: RouterId::new((r + self.n - 1) % self.n),
                port: self.cw_port(),
            })
        } else {
            None
        }
    }

    fn route(&self, at: RouterId, dst: NodeId, mode: RouteMode) -> RouteInfo {
        assert!(dst.index() < self.num_nodes(), "destination out of range");
        if self.router_of(dst) == at {
            return RouteInfo::new(self.local_port(dst));
        }
        // Unknown variants travel clockwise, matching the default mode.
        if mode == RING_CCW {
            RouteInfo::new(self.ccw_port())
        } else {
            RouteInfo::new(self.cw_port())
        }
    }

    fn select_mode(&self, src: NodeId, dst: NodeId, _policy_mode: RouteMode) -> RouteMode {
        shortest_dir(
            self.n,
            self.router_of(src).index(),
            self.router_of(dst).index(),
        )
    }

    fn mode_class(&self, _policy: RoutingPolicy, src: NodeId, dst: NodeId, mode: RouteMode) -> u8 {
        dateline_class(
            self.router_of(src).index(),
            self.router_of(dst).index(),
            mode,
        )
    }

    fn min_classes(&self) -> u8 {
        2
    }

    fn min_hops(&self, src: NodeId, dst: NodeId) -> u32 {
        let a = self.router_of(src).index();
        let b = self.router_of(dst).index();
        let cw = (b + self.n - a) % self.n;
        cw.min(self.n - cw) as u32
    }
}

/// A hierarchical two-level ring: `groups` local rings of `locals` routers
/// each, whose hub routers (local index 0) form a second, global ring.
///
/// Router `g * locals + l` is router `l` of group `g`. Every router carries
/// the local-ring ports of [`Ring`] (CW at `concentration`, CCW at
/// `concentration + 1`); hubs add a global clockwise port
/// (`concentration + 2`) toward the hub of group `(g + 1) % groups` and a
/// global counter-clockwise port (`concentration + 3`).
///
/// Intra-group packets route exactly like [`Ring`] (shortest direction,
/// dateline classes). Inter-group packets travel in [`RING_INTER`]: local
/// CCW down to the hub, along the hub ring in the direction of increasing
/// (`g < g'` → CW) or decreasing (`g > g'` → CCW) group index — wrap-free
/// by construction — then local CW outward to the destination router.
#[derive(Clone, Debug)]
pub struct HierRing {
    groups: usize,
    locals: usize,
    concentration: usize,
    name: String,
}

impl HierRing {
    /// Creates a hierarchical ring.
    ///
    /// # Panics
    ///
    /// Panics if `groups < 2`, `locals < 2`, or the concentration is zero.
    pub fn new(groups: usize, locals: usize, concentration: usize) -> Self {
        assert!(groups >= 2, "a hierarchical ring needs at least two groups");
        assert!(locals >= 2, "each group needs at least two routers");
        assert!(concentration > 0, "concentration must be nonzero");
        let name = if concentration == 1 {
            format!("hring{groups}x{locals}")
        } else {
            format!("hring{groups}x{locals}c{concentration}")
        };
        Self {
            groups,
            locals,
            concentration,
            name,
        }
    }

    /// Splits a router id into `(group, local index)`.
    fn split(&self, router: RouterId) -> (usize, usize) {
        (router.index() / self.locals, router.index() % self.locals)
    }

    fn router_at(&self, group: usize, local: usize) -> RouterId {
        RouterId::new(group * self.locals + local)
    }

    fn is_hub(&self, router: RouterId) -> bool {
        router.index().is_multiple_of(self.locals)
    }

    fn local_cw(&self) -> PortIndex {
        PortIndex::new(self.concentration)
    }

    fn local_ccw(&self) -> PortIndex {
        PortIndex::new(self.concentration + 1)
    }

    fn global_cw(&self) -> PortIndex {
        PortIndex::new(self.concentration + 2)
    }

    fn global_ccw(&self) -> PortIndex {
        PortIndex::new(self.concentration + 3)
    }
}

impl Topology for HierRing {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_routers(&self) -> usize {
        self.groups * self.locals
    }

    fn num_nodes(&self) -> usize {
        self.num_routers() * self.concentration
    }

    fn concentration(&self) -> usize {
        self.concentration
    }

    fn in_ports(&self, router: RouterId) -> usize {
        self.concentration + if self.is_hub(router) { 4 } else { 2 }
    }

    fn out_ports(&self, router: RouterId) -> usize {
        self.in_ports(router)
    }

    fn channel_len(&self, router: RouterId, out: PortIndex) -> u8 {
        u8::from(out.index() < self.out_ports(router))
    }

    fn link(&self, router: RouterId, out: PortIndex, hop: u8) -> Option<LinkEnd> {
        if hop != 1 {
            return None;
        }
        let (g, l) = self.split(router);
        if out == self.local_cw() {
            Some(LinkEnd {
                router: self.router_at(g, (l + 1) % self.locals),
                port: self.local_ccw(),
            })
        } else if out == self.local_ccw() {
            Some(LinkEnd {
                router: self.router_at(g, (l + self.locals - 1) % self.locals),
                port: self.local_cw(),
            })
        } else if self.is_hub(router) && out == self.global_cw() {
            Some(LinkEnd {
                router: self.router_at((g + 1) % self.groups, 0),
                port: self.global_ccw(),
            })
        } else if self.is_hub(router) && out == self.global_ccw() {
            Some(LinkEnd {
                router: self.router_at((g + self.groups - 1) % self.groups, 0),
                port: self.global_cw(),
            })
        } else {
            None
        }
    }

    fn route(&self, at: RouterId, dst: NodeId, mode: RouteMode) -> RouteInfo {
        assert!(dst.index() < self.num_nodes(), "destination out of range");
        let dst_router = self.router_of(dst);
        if dst_router == at {
            return RouteInfo::new(self.local_port(dst));
        }
        let (g, l) = self.split(at);
        let (dg, dl) = self.split(dst_router);
        if mode == RING_INTER {
            if g != dg {
                if l != 0 {
                    // Descend to the hub: CCW is wrap-free from any l > 0.
                    return RouteInfo::new(self.local_ccw());
                }
                // On the hub ring, move by group-index comparison (never
                // through the wrap edge).
                return if g < dg {
                    RouteInfo::new(self.global_cw())
                } else {
                    RouteInfo::new(self.global_ccw())
                };
            }
            // In the destination group: CW outward from the hub is wrap-free
            // because inter-group packets enter at local index 0 and
            // dl <= locals - 1.
            debug_assert!(l < dl, "inter-group packet overshot its target");
            return RouteInfo::new(self.local_cw());
        }
        debug_assert_eq!(g, dg, "local mode used across groups");
        // Unknown variants travel clockwise, matching the default mode.
        if mode == RING_CCW {
            RouteInfo::new(self.local_ccw())
        } else {
            RouteInfo::new(self.local_cw())
        }
    }

    fn select_mode(&self, src: NodeId, dst: NodeId, _policy_mode: RouteMode) -> RouteMode {
        let (sg, sl) = self.split(self.router_of(src));
        let (dg, dl) = self.split(self.router_of(dst));
        if sg != dg {
            RING_INTER
        } else {
            shortest_dir(self.locals, sl, dl)
        }
    }

    fn mode_class(&self, _policy: RoutingPolicy, src: NodeId, dst: NodeId, mode: RouteMode) -> u8 {
        if mode == RING_INTER {
            return 0; // wrap-free on every segment
        }
        let (_, sl) = self.split(self.router_of(src));
        let (_, dl) = self.split(self.router_of(dst));
        dateline_class(sl, dl, mode)
    }

    fn min_classes(&self) -> u8 {
        2
    }

    /// Hops along the *routed* path (the deliberately wrap-free hub-ring
    /// walk), not the graph-theoretic minimum — so `walk_route` and the
    /// latency model agree with what the network actually does.
    fn min_hops(&self, src: NodeId, dst: NodeId) -> u32 {
        let (sg, sl) = self.split(self.router_of(src));
        let (dg, dl) = self.split(self.router_of(dst));
        if sg == dg {
            let cw = (dl + self.locals - sl) % self.locals;
            cw.min(self.locals - cw) as u32
        } else {
            (sl + sg.abs_diff(dg) + dl) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate, walk_route, DistanceMatrix, FlatWiring};

    /// Routed hop count using the topology's own mode selection.
    fn walk(topo: &dyn Topology, s: usize, d: usize) -> usize {
        let (src, dst) = (NodeId::new(s), NodeId::new(d));
        let mode = topo.select_mode(src, dst, RouteMode::default());
        walk_route(topo, src, dst, mode).len() - 1
    }

    #[test]
    fn rings_validate_and_route_minimally() {
        for (n, c) in [(2, 1), (3, 1), (8, 1), (5, 2), (8, 4)] {
            let topo = Ring::new(n, c);
            assert!(validate(&topo).is_ok(), "{} failed validation", topo.name());
            for s in 0..topo.num_nodes() {
                for d in 0..topo.num_nodes() {
                    assert_eq!(
                        walk(&topo, s, d) as u32,
                        topo.min_hops(NodeId::new(s), NodeId::new(d)),
                        "{}: {s}->{d}",
                        topo.name()
                    );
                }
            }
        }
    }

    #[test]
    fn ring_prefers_the_short_direction_and_breaks_ties_clockwise() {
        let topo = Ring::new(8, 1);
        let m = |s, d| topo.select_mode(NodeId::new(s), NodeId::new(d), RouteMode::default());
        assert_eq!(m(0, 1), RING_CW);
        assert_eq!(m(0, 7), RING_CCW);
        assert_eq!(m(0, 4), RING_CW, "dist == n/2 ties go clockwise");
        assert_eq!(m(6, 2), RING_CW, "tie across the wrap edge");
    }

    #[test]
    fn ring_dateline_classes_mark_wrap_crossings() {
        let topo = Ring::new(8, 1);
        let cls = |s, d| {
            let (src, dst) = (NodeId::new(s), NodeId::new(d));
            let mode = topo.select_mode(src, dst, RouteMode::default());
            topo.mode_class(RoutingPolicy::Xy, src, dst, mode)
        };
        assert_eq!(cls(0, 3), 0, "forward CW, no wrap");
        assert_eq!(cls(6, 1), 1, "CW through 7->0");
        assert_eq!(cls(1, 6), 1, "CCW through 0->7");
        assert_eq!(cls(6, 2), 1, "CW tie through the wrap edge");
        assert_eq!(cls(3, 3), 0, "self traffic");
        assert_eq!(topo.min_classes(), 2);
    }

    #[test]
    fn ring_links_pair_up_bidirectionally() {
        let topo = Ring::new(4, 2);
        for r in 0..4 {
            let router = RouterId::new(r);
            let cw = topo.link(router, PortIndex::new(2), 1).unwrap();
            assert_eq!(cw.router.index(), (r + 1) % 4);
            let back = topo.link(cw.router, PortIndex::new(3), 1).unwrap();
            assert_eq!(back.router, router, "CCW undoes CW");
        }
    }

    #[test]
    fn hier_rings_validate_and_walk_their_routed_distance() {
        for (g, l, c) in [(2, 2, 1), (2, 8, 1), (4, 4, 1), (3, 4, 2)] {
            let topo = HierRing::new(g, l, c);
            assert!(validate(&topo).is_ok(), "{} failed validation", topo.name());
            for s in 0..topo.num_nodes() {
                for d in 0..topo.num_nodes() {
                    assert_eq!(
                        walk(&topo, s, d) as u32,
                        topo.min_hops(NodeId::new(s), NodeId::new(d)),
                        "{}: {s}->{d}",
                        topo.name()
                    );
                }
            }
        }
    }

    #[test]
    fn hier_ring_inter_group_path_goes_hub_to_hub() {
        let topo = HierRing::new(2, 8, 1);
        // Node 5 (group 0, local 5) to node 11 (group 1, local 3): down to
        // hub 0, across to hub 8, out to 11.
        let mode = topo.select_mode(NodeId::new(5), NodeId::new(11), RouteMode::default());
        assert_eq!(mode, RING_INTER);
        let path = walk_route(&topo, NodeId::new(5), NodeId::new(11), mode);
        let ids: Vec<usize> = path.iter().map(|r| r.index()).collect();
        assert_eq!(ids, [5, 4, 3, 2, 1, 0, 8, 9, 10, 11]);
        assert_eq!(
            topo.mode_class(RoutingPolicy::Xy, NodeId::new(5), NodeId::new(11), mode),
            0,
            "inter-group traffic is wrap-free class 0"
        );
    }

    #[test]
    fn hier_ring_local_traffic_matches_ring_semantics() {
        let topo = HierRing::new(2, 8, 1);
        let flat = Ring::new(8, 1);
        for s in 0..8 {
            for d in 0..8 {
                let (src, dst) = (NodeId::new(s), NodeId::new(d));
                assert_eq!(
                    topo.select_mode(src, dst, RouteMode::default()),
                    flat.select_mode(src, dst, RouteMode::default())
                );
                assert_eq!(topo.min_hops(src, dst), flat.min_hops(src, dst));
            }
        }
    }

    #[test]
    fn ring_family_supports_flat_wiring_and_distances() {
        for topo in [
            Box::new(Ring::new(8, 1)) as Box<dyn Topology>,
            Box::new(Ring::new(4, 4)),
            Box::new(HierRing::new(2, 8, 1)),
        ] {
            let wiring = FlatWiring::new(topo.as_ref());
            for r in 0..topo.num_routers() {
                let router = RouterId::new(r);
                assert_eq!(wiring.in_ports(router), topo.in_ports(router));
                assert_eq!(wiring.out_ports(router), topo.out_ports(router));
            }
            let dm = DistanceMatrix::new(topo.as_ref());
            for s in 0..topo.num_nodes() {
                for d in 0..topo.num_nodes() {
                    assert_eq!(
                        dm.get(NodeId::new(s), NodeId::new(d)),
                        topo.min_hops(NodeId::new(s), NodeId::new(d))
                    );
                }
            }
        }
    }
}
