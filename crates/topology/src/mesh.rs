//! 2D mesh and concentrated mesh.

use crate::{LinkEnd, Topology};
use noc_base::{Coord, NodeId, PortIndex, RouteInfo, RouteMode, RouterId};

/// Cardinal directions on the mesh; the network port for direction `d` is
/// `concentration + d as usize`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum Dir {
    North = 0,
    East = 1,
    South = 2,
    West = 3,
}

impl Dir {
    pub(crate) fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    pub(crate) fn from_port(port: PortIndex, concentration: usize) -> Option<Dir> {
        match port.index().checked_sub(concentration)? {
            0 => Some(Dir::North),
            1 => Some(Dir::East),
            2 => Some(Dir::South),
            3 => Some(Dir::West),
            _ => None,
        }
    }
}

/// A `width × height` 2D mesh with `concentration` nodes per router.
///
/// `Mesh::new(8, 8, 1)` is the paper's plain mesh; `Mesh::new(4, 4, 4)` is
/// the concentrated mesh used as the CMP substrate (each router attaches two
/// processor cores and two L2 banks).
#[derive(Clone, Debug)]
pub struct Mesh {
    width: u16,
    height: u16,
    concentration: usize,
    name: String,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the concentration is zero.
    pub fn new(width: u16, height: u16, concentration: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        assert!(concentration > 0, "concentration must be nonzero");
        let name = if concentration == 1 {
            format!("mesh{width}x{height}")
        } else {
            format!("cmesh{width}x{height}c{concentration}")
        };
        Self {
            width,
            height,
            concentration,
            name,
        }
    }

    /// Grid width in routers.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height in routers.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Coordinate of a router.
    pub fn coord(&self, router: RouterId) -> Coord {
        Coord::from_index(router.index(), self.width)
    }

    /// Router at a coordinate.
    pub fn router_at(&self, coord: Coord) -> RouterId {
        RouterId::new(coord.to_index(self.width))
    }

    fn neighbor(&self, router: RouterId, dir: Dir) -> Option<RouterId> {
        let c = self.coord(router);
        let next = match dir {
            Dir::North => (c.y > 0).then(|| Coord::new(c.x, c.y - 1)),
            Dir::South => (c.y + 1 < self.height).then(|| Coord::new(c.x, c.y + 1)),
            Dir::West => (c.x > 0).then(|| Coord::new(c.x - 1, c.y)),
            Dir::East => (c.x + 1 < self.width).then(|| Coord::new(c.x + 1, c.y)),
        }?;
        Some(self.router_at(next))
    }

    fn port_of(&self, dir: Dir) -> PortIndex {
        PortIndex::new(self.concentration + dir as usize)
    }

    /// Dimension-order next direction toward `to`, or `None` when already
    /// at the destination router.
    fn dor_dir(&self, from: Coord, to: Coord, mode: RouteMode) -> Option<Dir> {
        let x_dir = || {
            if to.x > from.x {
                Some(Dir::East)
            } else if to.x < from.x {
                Some(Dir::West)
            } else {
                None
            }
        };
        let y_dir = || {
            if to.y > from.y {
                Some(Dir::South)
            } else if to.y < from.y {
                Some(Dir::North)
            } else {
                None
            }
        };
        // Unknown variants route X-first, matching the default mode.
        if mode == RouteMode::YX {
            y_dir().or_else(x_dir)
        } else {
            x_dir().or_else(y_dir)
        }
    }
}

impl Topology for Mesh {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_routers(&self) -> usize {
        self.width as usize * self.height as usize
    }

    fn num_nodes(&self) -> usize {
        self.num_routers() * self.concentration
    }

    fn concentration(&self) -> usize {
        self.concentration
    }

    fn in_ports(&self, _router: RouterId) -> usize {
        self.concentration + 4
    }

    fn out_ports(&self, _router: RouterId) -> usize {
        self.concentration + 4
    }

    fn channel_len(&self, router: RouterId, out: PortIndex) -> u8 {
        if out.index() < self.concentration {
            return 1;
        }
        match Dir::from_port(out, self.concentration) {
            Some(dir) if self.neighbor(router, dir).is_some() => 1,
            _ => 0,
        }
    }

    fn link(&self, router: RouterId, out: PortIndex, hop: u8) -> Option<LinkEnd> {
        if hop != 1 || out.index() < self.concentration {
            return None;
        }
        let dir = Dir::from_port(out, self.concentration)?;
        let next = self.neighbor(router, dir)?;
        Some(LinkEnd {
            router: next,
            port: self.port_of(dir.opposite()),
        })
    }

    fn route(&self, at: RouterId, dst: NodeId, mode: RouteMode) -> RouteInfo {
        assert!(dst.index() < self.num_nodes(), "destination out of range");
        let dst_router = self.router_of(dst);
        let from = self.coord(at);
        let to = self.coord(dst_router);
        match self.dor_dir(from, to, mode) {
            Some(dir) => RouteInfo::new(self.port_of(dir)),
            None => RouteInfo::new(self.local_port(dst)),
        }
    }

    fn min_hops(&self, src: NodeId, dst: NodeId) -> u32 {
        let a = self.coord(self.router_of(src));
        let b = self.coord(self.router_of(dst));
        a.manhattan(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{average_min_hops, validate, walk_route};

    #[test]
    fn wiring_is_consistent() {
        for (w, h, c) in [(1, 1, 1), (4, 4, 4), (8, 8, 1), (3, 5, 2)] {
            let m = Mesh::new(w, h, c);
            validate(&m).unwrap_or_else(|e| panic!("{w}x{h}c{c}: {e}"));
        }
    }

    #[test]
    fn names_distinguish_concentration() {
        assert_eq!(Mesh::new(8, 8, 1).name(), "mesh8x8");
        assert_eq!(Mesh::new(4, 4, 4).name(), "cmesh4x4c4");
    }

    #[test]
    fn links_are_bidirectional_pairs() {
        let m = Mesh::new(4, 4, 2);
        for r in 0..m.num_routers() {
            let router = RouterId::new(r);
            for p in m.concentration()..m.out_ports(router) {
                let port = PortIndex::new(p);
                if let Some(end) = m.link(router, port, 1) {
                    // The reverse channel from the neighbour comes back here.
                    let back = m.link(end.router, end.port, 1).expect("reverse link");
                    assert_eq!(back.router, router);
                    assert_eq!(back.port, port);
                }
            }
        }
    }

    #[test]
    fn edge_routers_have_dead_ports() {
        let m = Mesh::new(4, 4, 1);
        let corner = RouterId::new(0); // (0,0): no North, no West
        assert_eq!(m.channel_len(corner, PortIndex::new(1)), 0); // North
        assert_eq!(m.channel_len(corner, PortIndex::new(4)), 0); // West
        assert_eq!(m.channel_len(corner, PortIndex::new(2)), 1); // East
        assert_eq!(m.channel_len(corner, PortIndex::new(3)), 1); // South
    }

    #[test]
    fn xy_routes_x_first() {
        let m = Mesh::new(4, 4, 1);
        // From (0,0) to node at router (2,3).
        let dst = NodeId::new(Coord::new(2, 3).to_index(4));
        let path = walk_route(&m, NodeId::new(0), dst, RouteMode::XY);
        let coords: Vec<Coord> = path.iter().map(|&r| m.coord(r)).collect();
        // X changes first, then Y.
        assert_eq!(coords[0], Coord::new(0, 0));
        assert_eq!(coords[1], Coord::new(1, 0));
        assert_eq!(coords[2], Coord::new(2, 0));
        assert_eq!(coords[3], Coord::new(2, 1));
        assert_eq!(*coords.last().unwrap(), Coord::new(2, 3));
    }

    #[test]
    fn yx_routes_y_first() {
        let m = Mesh::new(4, 4, 1);
        let dst = NodeId::new(Coord::new(2, 3).to_index(4));
        let path = walk_route(&m, NodeId::new(0), dst, RouteMode::YX);
        let coords: Vec<Coord> = path.iter().map(|&r| m.coord(r)).collect();
        assert_eq!(coords[1], Coord::new(0, 1));
        assert_eq!(*coords.last().unwrap(), Coord::new(2, 3));
    }

    #[test]
    fn all_pairs_reach_destination_with_min_hops() {
        let m = Mesh::new(3, 3, 2);
        for s in 0..m.num_nodes() {
            for d in 0..m.num_nodes() {
                for mode in [RouteMode::XY, RouteMode::YX] {
                    let src = NodeId::new(s);
                    let dst = NodeId::new(d);
                    let path = walk_route(&m, src, dst, mode);
                    assert_eq!(
                        path.len() as u32 - 1,
                        m.min_hops(src, dst),
                        "{src}->{dst} {mode:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn same_router_delivery_is_zero_hops() {
        let m = Mesh::new(4, 4, 4);
        // Nodes 0..4 share router 0.
        assert_eq!(m.min_hops(NodeId::new(0), NodeId::new(3)), 0);
        let route = m.route(RouterId::new(0), NodeId::new(3), RouteMode::XY);
        assert_eq!(route.port, PortIndex::new(3));
    }

    #[test]
    fn average_hops_shrinks_with_concentration() {
        let mesh = Mesh::new(8, 8, 1);
        let cmesh = Mesh::new(4, 4, 4);
        assert_eq!(mesh.num_nodes(), cmesh.num_nodes());
        assert!(average_min_hops(&cmesh) < average_min_hops(&mesh));
    }

    #[test]
    fn node_attachment_roundtrip() {
        let m = Mesh::new(4, 4, 4);
        for n in 0..m.num_nodes() {
            let node = NodeId::new(n);
            let r = m.router_of(node);
            let p = m.local_port(node);
            assert_eq!(m.node_at(r, p), Some(node));
        }
        assert_eq!(m.node_at(RouterId::new(0), PortIndex::new(4)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn route_to_bad_destination_panics() {
        let m = Mesh::new(2, 2, 1);
        let _ = m.route(RouterId::new(0), NodeId::new(99), RouteMode::XY);
    }
}
