#![warn(missing_docs)]

//! On-chip network topologies and routing for the pseudo-circuit reproduction.
//!
//! The paper evaluates four topologies (its Fig. 13):
//!
//! - 2D **mesh** ([`Mesh`] with concentration 1),
//! - **concentrated mesh** (CMesh, Balfour & Dally ICS 2006 — [`Mesh`] with
//!   concentration 4, the paper's CMP substrate),
//! - **MECS** (Multidrop Express Cube, Grot et al. HPCA 2009 — [`Mecs`]),
//! - **flattened butterfly** (Kim et al. MICRO 2007 — [`FlattenedButterfly`]).
//!
//! Beyond the paper's four, the crate adds a bidirectional **ring** and a
//! hierarchical two-level ring ([`Ring`], [`HierRing`]) whose CW/CCW
//! direction modes and dateline VC classes exercise the topology-neutral
//! [`RouteMode`](noc_base::RouteMode) abstraction.
//!
//! All topologies expose the same [`Topology`] trait: directed output channels
//! that may be point-to-point (mesh, flattened butterfly) or multidrop (MECS),
//! plus a dimension-order routing function used both for direct routing and
//! for *lookahead* route computation (the downstream router's output port is
//! computed one hop ahead and carried in the flit, removing route computation
//! from the router critical path).
//!
//! # Example
//!
//! ```
//! use noc_topology::{Mesh, Topology};
//! use noc_base::{NodeId, RouteMode};
//!
//! let mesh = Mesh::new(4, 4, 1);
//! let route = mesh.route(mesh.router_of(NodeId::new(0)), NodeId::new(5), RouteMode::XY);
//! assert_eq!(mesh.min_hops(NodeId::new(0), NodeId::new(5)), 2);
//! assert_eq!(route.hops, 1);
//! ```

mod fbfly;
mod mecs;
mod mesh;
mod ring;
mod wiring;

pub use fbfly::FlattenedButterfly;
pub use mecs::Mecs;
pub use mesh::Mesh;
pub use ring::{HierRing, Ring, RING_CCW, RING_CW, RING_INTER};
pub use wiring::{DistanceMatrix, FlatWiring, PortFeeder};

use noc_base::{NodeId, PortIndex, RouteInfo, RouteMode, RouterId};
use std::sync::Arc;

/// One end of a directed link: an input port on a router.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct LinkEnd {
    /// The router at this end.
    pub router: RouterId,
    /// The input port on that router.
    pub port: PortIndex,
}

/// A network topology: router count, port wiring, node attachment, and
/// dimension-order routing.
///
/// Port-numbering convention shared by all implementations: ports
/// `0..concentration()` on every router are *local* ports attached to nodes
/// (in injection and ejection directions alike); network ports follow.
/// Input ports and output ports are numbered independently (MECS is
/// asymmetric: few output channels, many input ports).
pub trait Topology: Send + Sync {
    /// Short human-readable name (e.g. `"mesh8x8"`).
    fn name(&self) -> &str;

    /// Number of routers.
    fn num_routers(&self) -> usize;

    /// Number of endpoint nodes.
    fn num_nodes(&self) -> usize;

    /// Nodes attached per router.
    fn concentration(&self) -> usize;

    /// The router a node is attached to.
    fn router_of(&self, node: NodeId) -> RouterId {
        RouterId::new(node.index() / self.concentration())
    }

    /// The local port (same index for input and output) a node occupies on
    /// its router.
    fn local_port(&self, node: NodeId) -> PortIndex {
        PortIndex::new(node.index() % self.concentration())
    }

    /// The node attached at `(router, local_port)`, if `local_port` is a
    /// local port.
    fn node_at(&self, router: RouterId, local_port: PortIndex) -> Option<NodeId> {
        if local_port.index() < self.concentration() {
            let node = router.index() * self.concentration() + local_port.index();
            (node < self.num_nodes()).then(|| NodeId::new(node))
        } else {
            None
        }
    }

    /// Number of input ports on `router` (including local ports).
    fn in_ports(&self, router: RouterId) -> usize;

    /// Number of output ports on `router` (including local ports).
    fn out_ports(&self, router: RouterId) -> usize;

    /// Number of drop-off positions on output channel `out` of `router`:
    /// `0` for an unconnected (edge) port, `1` for a point-to-point link,
    /// `> 1` for a multidrop express channel. Local ports report `1`.
    fn channel_len(&self, router: RouterId, out: PortIndex) -> u8;

    /// The input port reached from `(router, out)` at drop position `hop`
    /// (1-based). Returns `None` for local ports, unconnected ports, or
    /// `hop > channel_len`.
    fn link(&self, router: RouterId, out: PortIndex, hop: u8) -> Option<LinkEnd>;

    /// Dimension-order route for a packet at router `at` headed to node
    /// `dst`: the output port to take (and drop-off distance for multidrop
    /// channels). If `dst` is attached to `at`, returns its local port.
    fn route(&self, at: RouterId, dst: NodeId, mode: RouteMode) -> RouteInfo;

    /// Refines the policy-chosen route mode for a packet from `src` to
    /// `dst`. The network interface calls this once per packet, after
    /// [`noc_base::RoutingPolicy::pick_mode`]; topologies whose variant
    /// space differs from the policy's XY/YX vocabulary (e.g. a ring's
    /// CW/CCW directions) override it to map the policy's choice into their
    /// own space. The default keeps the policy's mode, which preserves the
    /// behavior of the dimension-ordered topologies exactly.
    fn select_mode(&self, src: NodeId, dst: NodeId, policy_mode: RouteMode) -> RouteMode {
        let _ = (src, dst);
        policy_mode
    }

    /// The deadlock VC class a packet from `src` to `dst` with the (already
    /// refined) `mode` travels in. The default delegates to the routing
    /// policy's class assignment; topologies with their own class discipline
    /// (e.g. a ring's dateline classes) override it.
    fn mode_class(
        &self,
        policy: noc_base::RoutingPolicy,
        src: NodeId,
        dst: NodeId,
        mode: RouteMode,
    ) -> u8 {
        let _ = (src, dst);
        policy.class_of(mode)
    }

    /// The minimum number of VC classes this topology needs for deadlock
    /// freedom, regardless of routing policy (1 for the dimension-ordered
    /// topologies; a ring needs 2 dateline classes). The network partitions
    /// each port's VCs into `max(policy.num_classes(), topo.min_classes())`
    /// classes.
    fn min_classes(&self) -> u8 {
        1
    }

    /// Minimal number of inter-router link traversals from `src` to `dst`
    /// (0 when both nodes share a router).
    fn min_hops(&self, src: NodeId, dst: NodeId) -> u32;
}

/// Average minimal hop count over all ordered node pairs (src ≠ dst) — the
/// `H_avg` term of the paper's §VII latency model.
pub fn average_min_hops(topo: &dyn Topology) -> f64 {
    let n = topo.num_nodes();
    let mut total = 0u64;
    let mut pairs = 0u64;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            total += topo.min_hops(NodeId::new(s), NodeId::new(d)) as u64;
            pairs += 1;
        }
    }
    if pairs == 0 {
        0.0
    } else {
        total as f64 / pairs as f64
    }
}

/// Exhaustively checks a topology's wiring for internal consistency; used by
/// tests and by the network builder as a guard against malformed topologies.
///
/// Verifies that every connected output channel position lands on a valid
/// input port, that local ports are not wired as links, and that every
/// (router, input-port) pair is fed by at most one channel position.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate(topo: &dyn Topology) -> Result<(), String> {
    let mut seen = std::collections::HashMap::new();
    for r in 0..topo.num_routers() {
        let router = RouterId::new(r);
        for out in 0..topo.out_ports(router) {
            let out = PortIndex::new(out);
            let len = topo.channel_len(router, out);
            if out.index() < topo.concentration() {
                if topo.link(router, out, 1).is_some() {
                    return Err(format!("local port {out} of {router} wired as a link"));
                }
                continue;
            }
            for hop in 1..=len {
                let Some(end) = topo.link(router, out, hop) else {
                    return Err(format!(
                        "{router} out {out} hop {hop} within channel_len {len} but unconnected"
                    ));
                };
                if end.router.index() >= topo.num_routers() {
                    return Err(format!(
                        "{router} out {out} hop {hop} -> bad {0}",
                        end.router
                    ));
                }
                if end.port.index() >= topo.in_ports(end.router) {
                    return Err(format!(
                        "{router} out {out} hop {hop} -> {} bad in port {}",
                        end.router, end.port
                    ));
                }
                if end.port.index() < topo.concentration() {
                    return Err(format!(
                        "{router} out {out} hop {hop} lands on local port {}",
                        end.port
                    ));
                }
                if let Some(prev) = seen.insert((end.router, end.port), (router, out, hop)) {
                    return Err(format!(
                        "input ({}, {}) fed twice: by {:?} and ({router}, {out}, {hop})",
                        end.router, end.port, prev
                    ));
                }
            }
            if topo.link(router, out, len + 1).is_some() {
                return Err(format!("{router} out {out} connected beyond channel_len"));
            }
        }
    }
    Ok(())
}

/// Walks a packet's dimension-order route from `src` to `dst`, returning the
/// sequence of routers visited (starting with `src`'s router and ending with
/// `dst`'s). Used by tests and by trace analysis; guards against routing
/// functions that loop by capping the walk.
///
/// # Panics
///
/// Panics if the routing function fails to reach the destination within
/// `4 * (num_routers + 2)` steps — which would indicate a routing bug.
pub fn walk_route(topo: &dyn Topology, src: NodeId, dst: NodeId, mode: RouteMode) -> Vec<RouterId> {
    let mut at = topo.router_of(src);
    let mut visited = vec![at];
    let cap = 4 * (topo.num_routers() + 2);
    for _ in 0..cap {
        let route = topo.route(at, dst, mode);
        if route.port.index() < topo.concentration() {
            assert_eq!(
                topo.node_at(at, route.port),
                Some(dst),
                "route delivered to wrong local port at {at}"
            );
            return visited;
        }
        let end = topo
            .link(at, route.port, route.hops)
            .unwrap_or_else(|| panic!("route at {at} uses unconnected port {}", route.port));
        at = end.router;
        visited.push(at);
    }
    panic!("route from {src} to {dst} did not converge");
}

/// Convenience alias used throughout the workspace for shared topologies.
pub type SharedTopology = Arc<dyn Topology>;
