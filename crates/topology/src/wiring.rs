//! Precomputed, dense wiring tables: every dynamic [`Topology`] lookup the
//! simulation engine performs per flit or per credit, flattened once at build
//! time into index arithmetic over contiguous arrays.
//!
//! The engine's steady-state loop must not pay a virtual call or a hash probe
//! per event. [`FlatWiring`] captures the forward wiring (output channel →
//! downstream input port, per drop position), the reverse wiring (input port
//! → feeding channel or injecting node, i.e. where credits go), and the
//! node-attachment maps. [`DistanceMatrix`] flattens all-pairs minimal hop
//! counts for delivery-time statistics.

use crate::{LinkEnd, Topology};
use noc_base::{NodeId, PortIndex, RouterId};

/// What feeds a router input port — equivalently, where a credit emitted by
/// that input port must be delivered.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum PortFeeder {
    /// Fed by drop position `sub` (0-based) of the upstream router's output
    /// channel `out_port`; credits return to that channel position.
    Channel {
        /// Upstream router.
        router: RouterId,
        /// Upstream output channel.
        out_port: PortIndex,
        /// 0-based drop position on that channel.
        sub: u8,
    },
    /// A local port fed by the injecting network interface of `NodeId`.
    Node(NodeId),
    /// Nothing feeds this port (an unconnected edge port).
    None,
}

/// Dense O(1) wiring tables for one topology.
///
/// Router port counts vary between routers (MECS is asymmetric), so ports are
/// addressed through per-router prefix offsets rather than a fixed stride.
#[derive(Clone, Debug)]
pub struct FlatWiring {
    concentration: usize,
    /// Prefix sums of `in_ports` per router; length `num_routers + 1`.
    in_base: Vec<u32>,
    /// Prefix sums of `out_ports` per router; length `num_routers + 1`.
    out_base: Vec<u32>,
    /// Reverse wiring per global input port; indexed `in_base[r] + port`.
    feeders: Vec<PortFeeder>,
    /// Per global output port, offset of its drop positions in `links`;
    /// length `out_base[last] + 1`.
    chan_base: Vec<u32>,
    /// Flattened link destinations, one per (output channel, drop position).
    links: Vec<LinkEnd>,
    /// Per node: its router and local port.
    attach: Vec<(RouterId, PortIndex)>,
    /// Per (router, local output port): the attached node, if any; indexed
    /// `router * concentration + port`.
    eject: Vec<Option<NodeId>>,
}

impl FlatWiring {
    /// Builds the tables by exhaustively enumerating the topology's wiring.
    pub fn new(topo: &dyn Topology) -> Self {
        let routers = topo.num_routers();
        let nodes = topo.num_nodes();
        let concentration = topo.concentration();

        let mut in_base = Vec::with_capacity(routers + 1);
        let mut out_base = Vec::with_capacity(routers + 1);
        in_base.push(0u32);
        out_base.push(0u32);
        for r in 0..routers {
            let router = RouterId::new(r);
            in_base.push(in_base[r] + topo.in_ports(router) as u32);
            out_base.push(out_base[r] + topo.out_ports(router) as u32);
        }

        let mut feeders = vec![PortFeeder::None; in_base[routers] as usize];
        let mut chan_base = Vec::with_capacity(out_base[routers] as usize + 1);
        let mut links = Vec::new();
        chan_base.push(0u32);
        for r in 0..routers {
            let router = RouterId::new(r);
            for out in 0..topo.out_ports(router) {
                let out_port = PortIndex::new(out);
                if out >= concentration {
                    for hop in 1..=topo.channel_len(router, out_port) {
                        if let Some(end) = topo.link(router, out_port, hop) {
                            links.push(end);
                            let slot = in_base[end.router.index()] as usize + end.port.index();
                            feeders[slot] = PortFeeder::Channel {
                                router,
                                out_port,
                                sub: hop - 1,
                            };
                        }
                    }
                }
                chan_base.push(links.len() as u32);
            }
            for p in 0..concentration {
                let port = PortIndex::new(p);
                if let Some(node) = topo.node_at(router, port) {
                    feeders[in_base[r] as usize + p] = PortFeeder::Node(node);
                }
            }
        }

        let attach = (0..nodes)
            .map(|n| {
                let node = NodeId::new(n);
                (topo.router_of(node), topo.local_port(node))
            })
            .collect();
        let eject = (0..routers * concentration)
            .map(|i| {
                topo.node_at(
                    RouterId::new(i / concentration),
                    PortIndex::new(i % concentration),
                )
            })
            .collect();

        Self {
            concentration,
            in_base,
            out_base,
            feeders,
            chan_base,
            links,
            attach,
            eject,
        }
    }

    /// Nodes attached per router (cached from the topology).
    #[inline]
    pub fn concentration(&self) -> usize {
        self.concentration
    }

    /// The reverse wiring of `(router, in_port)`: the channel position or
    /// node that feeds it.
    #[inline]
    pub fn feeder(&self, router: RouterId, in_port: PortIndex) -> PortFeeder {
        self.feeders[self.in_base[router.index()] as usize + in_port.index()]
    }

    /// The input port reached from `(router, out_port)` at drop position
    /// `hop` (1-based), mirroring [`Topology::link`] for connected network
    /// ports.
    ///
    /// # Panics
    ///
    /// Panics if the channel position is not connected (dead channel, local
    /// port, or `hop` beyond the channel length).
    #[inline]
    pub fn link(&self, router: RouterId, out_port: PortIndex, hop: u8) -> LinkEnd {
        let chan = self.out_base[router.index()] as usize + out_port.index();
        let base = self.chan_base[chan] as usize;
        let end = self.chan_base[chan + 1] as usize;
        let slot = base + (hop as usize - 1);
        assert!(
            hop >= 1 && slot < end,
            "{router} sent flit on dead channel {out_port} hop {hop}"
        );
        self.links[slot]
    }

    /// The node attached at `(router, local_port)`, mirroring
    /// [`Topology::node_at`].
    #[inline]
    pub fn eject_node(&self, router: RouterId, local_port: PortIndex) -> Option<NodeId> {
        if local_port.index() < self.concentration {
            self.eject[router.index() * self.concentration + local_port.index()]
        } else {
            None
        }
    }

    /// The router and local port a node is attached to.
    #[inline]
    pub fn attach_of(&self, node: NodeId) -> (RouterId, PortIndex) {
        self.attach[node.index()]
    }

    /// Number of input ports on `router` (from the prefix table).
    #[inline]
    pub fn in_ports(&self, router: RouterId) -> usize {
        (self.in_base[router.index() + 1] - self.in_base[router.index()]) as usize
    }

    /// Number of output ports on `router` (from the prefix table).
    #[inline]
    pub fn out_ports(&self, router: RouterId) -> usize {
        (self.out_base[router.index() + 1] - self.out_base[router.index()]) as usize
    }
}

/// All-pairs minimal hop counts, flattened to one `u32` per ordered node
/// pair. Replaces per-delivery [`Topology::min_hops`] virtual calls.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    nodes: usize,
    hops: Vec<u32>,
}

impl DistanceMatrix {
    /// Precomputes `min_hops` for every ordered node pair.
    pub fn new(topo: &dyn Topology) -> Self {
        let nodes = topo.num_nodes();
        let mut hops = Vec::with_capacity(nodes * nodes);
        for s in 0..nodes {
            for d in 0..nodes {
                hops.push(topo.min_hops(NodeId::new(s), NodeId::new(d)));
            }
        }
        Self { nodes, hops }
    }

    /// Minimal hop count from `src` to `dst`, mirroring
    /// [`Topology::min_hops`].
    #[inline]
    pub fn get(&self, src: NodeId, dst: NodeId) -> u32 {
        self.hops[src.index() * self.nodes + dst.index()]
    }

    /// Number of nodes the matrix covers.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mecs, Mesh};

    #[test]
    fn flat_link_matches_topology_on_mesh() {
        let topo = Mesh::new(3, 3, 2);
        let wiring = FlatWiring::new(&topo);
        for r in 0..topo.num_routers() {
            let router = RouterId::new(r);
            assert_eq!(wiring.in_ports(router), topo.in_ports(router));
            assert_eq!(wiring.out_ports(router), topo.out_ports(router));
            for out in topo.concentration()..topo.out_ports(router) {
                let out_port = PortIndex::new(out);
                for hop in 1..=topo.channel_len(router, out_port) {
                    assert_eq!(
                        Some(wiring.link(router, out_port, hop)),
                        topo.link(router, out_port, hop)
                    );
                }
            }
        }
    }

    #[test]
    fn distance_matrix_matches_min_hops_on_mecs() {
        let topo = Mecs::new(3, 2, 2);
        let dist = DistanceMatrix::new(&topo);
        for s in 0..topo.num_nodes() {
            for d in 0..topo.num_nodes() {
                let (s, d) = (NodeId::new(s), NodeId::new(d));
                assert_eq!(dist.get(s, d), topo.min_hops(s, d));
            }
        }
    }

    #[test]
    #[should_panic(expected = "dead channel")]
    fn flat_link_rejects_dead_channels() {
        let topo = Mesh::new(2, 2, 1);
        let wiring = FlatWiring::new(&topo);
        // Router 0 has no west link (port concentration + 3).
        let _ = wiring.link(RouterId::new(0), PortIndex::new(4), 1);
    }
}
