//! 2D flattened butterfly (Kim, Balfour & Dally, MICRO 2007).
//!
//! Every router is directly connected to every other router in its row and in
//! its column, so any minimal dimension-order route takes at most two network
//! hops. All channels are point-to-point (channel length 1); the express
//! connectivity is what distinguishes it from the mesh.

use crate::{LinkEnd, Topology};
use noc_base::{Coord, NodeId, PortIndex, RouteInfo, RouteMode, RouterId};

/// A `width × height` flattened butterfly with `concentration` nodes per
/// router.
///
/// Output/input port layout on a router at column `x`, row `y`:
/// - `0..c`: local ports;
/// - `c..c + width - 1`: row (X) links, ordered by target column skipping
///   `x` itself;
/// - `c + width - 1 .. c + width - 1 + height - 1`: column (Y) links, ordered
///   by target row skipping `y`.
#[derive(Clone, Debug)]
pub struct FlattenedButterfly {
    width: u16,
    height: u16,
    concentration: usize,
    name: String,
}

impl FlattenedButterfly {
    /// Creates a flattened butterfly.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the concentration is zero.
    pub fn new(width: u16, height: u16, concentration: usize) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be nonzero");
        assert!(concentration > 0, "concentration must be nonzero");
        Self {
            width,
            height,
            concentration,
            name: format!("fbfly{width}x{height}c{concentration}"),
        }
    }

    /// Coordinate of a router.
    pub fn coord(&self, router: RouterId) -> Coord {
        Coord::from_index(router.index(), self.width)
    }

    /// Router at a coordinate.
    pub fn router_at(&self, coord: Coord) -> RouterId {
        RouterId::new(coord.to_index(self.width))
    }

    /// The output (and input) port on the router at `from` that connects to
    /// column `to_x` in the same row.
    fn x_port(&self, from: Coord, to_x: u16) -> PortIndex {
        debug_assert_ne!(from.x, to_x);
        let slot = if to_x < from.x { to_x } else { to_x - 1 };
        PortIndex::new(self.concentration + slot as usize)
    }

    /// The output (and input) port on the router at `from` that connects to
    /// row `to_y` in the same column.
    fn y_port(&self, from: Coord, to_y: u16) -> PortIndex {
        debug_assert_ne!(from.y, to_y);
        let slot = if to_y < from.y { to_y } else { to_y - 1 };
        PortIndex::new(self.concentration + self.width as usize - 1 + slot as usize)
    }

    /// Decodes a network port back into its link target coordinate.
    fn port_target(&self, at: Coord, port: PortIndex) -> Option<Coord> {
        let net = port.index().checked_sub(self.concentration)?;
        let x_links = self.width as usize - 1;
        if net < x_links {
            let mut to_x = net as u16;
            if to_x >= at.x {
                to_x += 1;
            }
            (to_x < self.width).then(|| Coord::new(to_x, at.y))
        } else {
            let slot = net - x_links;
            if slot >= self.height as usize - 1 {
                return None;
            }
            let mut to_y = slot as u16;
            if to_y >= at.y {
                to_y += 1;
            }
            (to_y < self.height).then(|| Coord::new(at.x, to_y))
        }
    }
}

impl Topology for FlattenedButterfly {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_routers(&self) -> usize {
        self.width as usize * self.height as usize
    }

    fn num_nodes(&self) -> usize {
        self.num_routers() * self.concentration
    }

    fn concentration(&self) -> usize {
        self.concentration
    }

    fn in_ports(&self, _router: RouterId) -> usize {
        self.concentration + (self.width as usize - 1) + (self.height as usize - 1)
    }

    fn out_ports(&self, router: RouterId) -> usize {
        self.in_ports(router)
    }

    fn channel_len(&self, router: RouterId, out: PortIndex) -> u8 {
        if out.index() < self.concentration {
            return 1;
        }
        u8::from(self.port_target(self.coord(router), out).is_some())
    }

    fn link(&self, router: RouterId, out: PortIndex, hop: u8) -> Option<LinkEnd> {
        if hop != 1 || out.index() < self.concentration {
            return None;
        }
        let from = self.coord(router);
        let to = self.port_target(from, out)?;
        let back_port = if to.y == from.y {
            self.x_port(to, from.x)
        } else {
            self.y_port(to, from.y)
        };
        Some(LinkEnd {
            router: self.router_at(to),
            port: back_port,
        })
    }

    fn route(&self, at: RouterId, dst: NodeId, mode: RouteMode) -> RouteInfo {
        assert!(dst.index() < self.num_nodes(), "destination out of range");
        let from = self.coord(at);
        let to = self.coord(self.router_of(dst));
        let x_step = (from.x != to.x).then(|| self.x_port(from, to.x));
        let y_step = (from.y != to.y).then(|| self.y_port(from, to.y));
        // Unknown variants route X-first, matching the default mode.
        let port = if mode == RouteMode::YX {
            y_step.or(x_step)
        } else {
            x_step.or(y_step)
        };
        match port {
            Some(p) => RouteInfo::new(p),
            None => RouteInfo::new(self.local_port(dst)),
        }
    }

    fn min_hops(&self, src: NodeId, dst: NodeId) -> u32 {
        let a = self.coord(self.router_of(src));
        let b = self.coord(self.router_of(dst));
        u32::from(a.x != b.x) + u32::from(a.y != b.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mesh;
    use crate::{average_min_hops, validate, walk_route};

    #[test]
    fn wiring_is_consistent() {
        for (w, h, c) in [(2, 2, 1), (4, 4, 4), (3, 5, 2)] {
            let t = FlattenedButterfly::new(w, h, c);
            validate(&t).unwrap_or_else(|e| panic!("{w}x{h}c{c}: {e}"));
        }
    }

    #[test]
    fn links_are_bidirectional_pairs() {
        let t = FlattenedButterfly::new(4, 4, 2);
        for r in 0..t.num_routers() {
            let router = RouterId::new(r);
            for p in t.concentration()..t.out_ports(router) {
                let port = PortIndex::new(p);
                if let Some(end) = t.link(router, port, 1) {
                    let back = t.link(end.router, end.port, 1).expect("reverse link");
                    assert_eq!((back.router, back.port), (router, port));
                }
            }
        }
    }

    #[test]
    fn every_route_is_at_most_two_hops() {
        let t = FlattenedButterfly::new(4, 4, 4);
        for s in (0..t.num_nodes()).step_by(3) {
            for d in (0..t.num_nodes()).step_by(5) {
                for mode in [RouteMode::XY, RouteMode::YX] {
                    let path = walk_route(&t, NodeId::new(s), NodeId::new(d), mode);
                    assert!(path.len() <= 3, "{s}->{d}: {path:?}");
                    assert_eq!(
                        path.len() as u32 - 1,
                        t.min_hops(NodeId::new(s), NodeId::new(d))
                    );
                }
            }
        }
    }

    #[test]
    fn average_hops_beat_the_cmesh() {
        let fb = FlattenedButterfly::new(4, 4, 4);
        let cm = Mesh::new(4, 4, 4);
        assert!(average_min_hops(&fb) < average_min_hops(&cm));
    }

    #[test]
    fn port_layout_covers_row_and_column() {
        let t = FlattenedButterfly::new(4, 4, 1);
        let r5 = RouterId::new(5); // (1,1)
                                   // 1 local + 3 row + 3 column ports.
        assert_eq!(t.out_ports(r5), 7);
        let mut targets = std::collections::HashSet::new();
        for p in 1..7 {
            let end = t.link(r5, PortIndex::new(p), 1).expect("connected");
            targets.insert(end.router.index());
        }
        assert_eq!(targets.len(), 6);
        // Row neighbours 4, 6, 7 and column neighbours 1, 9, 13.
        for expect in [4usize, 6, 7, 1, 9, 13] {
            assert!(targets.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn xy_and_yx_turn_in_different_corners() {
        let t = FlattenedButterfly::new(4, 4, 1);
        let src = NodeId::new(0); // (0,0)
        let dst = NodeId::new(15); // (3,3)
        let xy = walk_route(&t, src, dst, RouteMode::XY);
        let yx = walk_route(&t, src, dst, RouteMode::YX);
        assert_eq!(xy[1].index(), 3); // (3,0)
        assert_eq!(yx[1].index(), 12); // (0,3)
        assert_eq!(xy[2], yx[2]);
    }
}
