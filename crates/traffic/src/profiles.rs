//! Per-benchmark workload profiles for the CMP traffic model.
//!
//! The paper extracts traces from SPEComp 2001 (fma3d, equake, mgrid), PARSEC
//! (blackscholes, streamcluster, swaptions), the NAS Parallel Benchmarks,
//! SPECjbb, and Splash-2 (FFT, LU, radix) running on a 32-core Simics system.
//! We cannot ship those traces, so each benchmark is represented by the
//! statistical knobs that matter to the network (DESIGN.md §5): miss
//! intensity, read/write mix, coherence sharing degree, bank temporal
//! locality (the source of the paper's Fig. 1 locality), burstiness, and
//! hotspot skew (SPECjbb's traffic is noted as uneven in the paper §VI.A).
//!
//! The values are calibrated so the suite's measured end-to-end locality
//! averages near the paper's ~22% and crossbar-connection locality near ~31%
//! on the 4×4 concentrated mesh; they are *profiles*, not measurements of the
//! original applications.

/// Statistical workload knobs for one benchmark application.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BenchmarkProfile {
    /// Benchmark name as it appears in the paper's figures.
    pub name: &'static str,
    /// Probability per cycle that an unthrottled core issues a new L1 miss.
    pub miss_rate: f64,
    /// Fraction of misses that are writes (write-through protocol).
    pub write_fraction: f64,
    /// Probability a write triggers invalidations to sharers.
    pub coherence_fraction: f64,
    /// Mean number of sharers invalidated per coherence event.
    pub avg_sharers: f64,
    /// Probability the next miss targets the same L2 bank as the previous
    /// one (drives communication temporal locality).
    pub bank_locality: f64,
    /// Probability of staying in the bursting state each cycle (two-state
    /// Markov on/off modulation; `0` disables bursts).
    pub burstiness: f64,
    /// Zipf-like skew of bank popularity (`0` = uniform; SPECjbb is skewed).
    pub hotspot_skew: f64,
}

impl BenchmarkProfile {
    /// The full 12-application suite used by the figure harnesses, in the
    /// order the paper's figures list them.
    pub fn suite() -> &'static [BenchmarkProfile] {
        SUITE
    }

    /// Looks a profile up by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<&'static BenchmarkProfile> {
        SUITE.iter().find(|p| p.name.eq_ignore_ascii_case(name))
    }
}

/// SPEComp / PARSEC / NPB / SPECjbb / Splash-2 profile suite.
static SUITE: &[BenchmarkProfile] = &[
    BenchmarkProfile {
        name: "fma3d",
        miss_rate: 0.020,
        write_fraction: 0.30,
        coherence_fraction: 0.20,
        avg_sharers: 1.5,
        bank_locality: 0.40,
        burstiness: 0.50,
        hotspot_skew: 0.0,
    },
    BenchmarkProfile {
        name: "equake",
        miss_rate: 0.025,
        write_fraction: 0.35,
        coherence_fraction: 0.25,
        avg_sharers: 2.0,
        bank_locality: 0.35,
        burstiness: 0.55,
        hotspot_skew: 0.0,
    },
    BenchmarkProfile {
        name: "mgrid",
        miss_rate: 0.018,
        write_fraction: 0.25,
        coherence_fraction: 0.15,
        avg_sharers: 1.2,
        bank_locality: 0.50,
        burstiness: 0.40,
        hotspot_skew: 0.0,
    },
    BenchmarkProfile {
        name: "blackscholes",
        miss_rate: 0.008,
        write_fraction: 0.20,
        coherence_fraction: 0.10,
        avg_sharers: 1.0,
        bank_locality: 0.45,
        burstiness: 0.30,
        hotspot_skew: 0.0,
    },
    BenchmarkProfile {
        name: "streamcluster",
        miss_rate: 0.030,
        write_fraction: 0.30,
        coherence_fraction: 0.30,
        avg_sharers: 2.5,
        bank_locality: 0.30,
        burstiness: 0.60,
        hotspot_skew: 0.0,
    },
    BenchmarkProfile {
        name: "swaptions",
        miss_rate: 0.006,
        write_fraction: 0.25,
        coherence_fraction: 0.10,
        avg_sharers: 1.0,
        bank_locality: 0.40,
        burstiness: 0.25,
        hotspot_skew: 0.0,
    },
    BenchmarkProfile {
        name: "cg",
        miss_rate: 0.028,
        write_fraction: 0.30,
        coherence_fraction: 0.20,
        avg_sharers: 1.8,
        bank_locality: 0.45,
        burstiness: 0.45,
        hotspot_skew: 0.0,
    },
    BenchmarkProfile {
        name: "is",
        miss_rate: 0.035,
        write_fraction: 0.40,
        coherence_fraction: 0.25,
        avg_sharers: 2.0,
        bank_locality: 0.25,
        burstiness: 0.50,
        hotspot_skew: 0.0,
    },
    BenchmarkProfile {
        name: "jbb",
        miss_rate: 0.022,
        write_fraction: 0.35,
        coherence_fraction: 0.30,
        avg_sharers: 2.2,
        bank_locality: 0.25,
        burstiness: 0.55,
        hotspot_skew: 2.0,
    },
    BenchmarkProfile {
        name: "fft",
        miss_rate: 0.026,
        write_fraction: 0.30,
        coherence_fraction: 0.20,
        avg_sharers: 1.6,
        bank_locality: 0.35,
        burstiness: 0.45,
        hotspot_skew: 0.0,
    },
    BenchmarkProfile {
        name: "lu",
        miss_rate: 0.020,
        write_fraction: 0.28,
        coherence_fraction: 0.18,
        avg_sharers: 1.5,
        bank_locality: 0.45,
        burstiness: 0.40,
        hotspot_skew: 0.0,
    },
    BenchmarkProfile {
        name: "radix",
        miss_rate: 0.033,
        write_fraction: 0.45,
        coherence_fraction: 0.25,
        avg_sharers: 2.0,
        bank_locality: 0.25,
        burstiness: 0.50,
        hotspot_skew: 0.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_unique_benchmarks() {
        let suite = BenchmarkProfile::suite();
        assert_eq!(suite.len(), 12);
        let names: std::collections::HashSet<_> = suite.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn probabilities_are_valid() {
        for p in BenchmarkProfile::suite() {
            assert!(p.miss_rate > 0.0 && p.miss_rate < 1.0, "{}", p.name);
            for v in [
                p.write_fraction,
                p.coherence_fraction,
                p.bank_locality,
                p.burstiness,
            ] {
                assert!((0.0..=1.0).contains(&v), "{}", p.name);
            }
            assert!(p.avg_sharers >= 0.0);
            assert!(p.hotspot_skew >= 0.0);
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(BenchmarkProfile::by_name("FMA3D").unwrap().name, "fma3d");
        assert_eq!(BenchmarkProfile::by_name("jbb").unwrap().hotspot_skew, 2.0);
        assert!(BenchmarkProfile::by_name("nope").is_none());
    }

    #[test]
    fn only_jbb_is_skewed() {
        for p in BenchmarkProfile::suite() {
            if p.name == "jbb" {
                assert!(p.hotspot_skew > 0.0);
            } else {
                assert_eq!(p.hotspot_skew, 0.0, "{}", p.name);
            }
        }
    }
}
