//! Packet-trace record and replay.
//!
//! The paper's methodology extracts traces from a full-system simulator and
//! replays them through the network simulator. [`TraceRecorder`] wraps any
//! [`TrafficModel`] and logs every emitted request with its cycle;
//! [`TraceReplay`] plays a recorded trace back, open-loop, so two router
//! configurations can be compared on *identical* input (and so tests get
//! deterministic workloads).
//!
//! The on-disk format is a plain text line format —
//! `cycle src dst len class` — chosen over a serde format so the workspace
//! needs no serialization dependency (DESIGN.md §8).

use crate::{PacketRequest, TrafficModel};
use noc_base::{NodeId, PacketClass};
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Write};

/// One packet injection event.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Cycle the packet was requested.
    pub cycle: u64,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Length in flits.
    pub len: u16,
    /// Semantic class.
    pub class: PacketClass,
}

fn class_code(class: PacketClass) -> &'static str {
    match class {
        PacketClass::Data => "D",
        PacketClass::ReadRequest => "RQ",
        PacketClass::ReadResponse => "RS",
        PacketClass::WriteRequest => "WQ",
        PacketClass::WriteAck => "WA",
        PacketClass::Coherence => "C",
    }
}

fn class_from_code(code: &str) -> Option<PacketClass> {
    Some(match code {
        "D" => PacketClass::Data,
        "RQ" => PacketClass::ReadRequest,
        "RS" => PacketClass::ReadResponse,
        "WQ" => PacketClass::WriteRequest,
        "WA" => PacketClass::WriteAck,
        "C" => PacketClass::Coherence,
        _ => return None,
    })
}

/// Error parsing a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Writes records in the line format. Lines beginning with `#` are comments.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut w: W, records: &[TraceRecord]) -> io::Result<()> {
    writeln!(w, "# pseudo-circuit packet trace: cycle src dst len class")?;
    for r in records {
        writeln!(
            w,
            "{} {} {} {} {}",
            r.cycle,
            r.src.index(),
            r.dst.index(),
            r.len,
            class_code(r.class)
        )?;
    }
    Ok(())
}

/// Reads records from the line format.
///
/// # Errors
///
/// Returns [`TraceError::Parse`] on a malformed line (wrong field count,
/// non-numeric field, unknown class code, zero length, or cycles out of
/// order) and [`TraceError::Io`] on reader failure.
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<TraceRecord>, TraceError> {
    let mut records = Vec::new();
    let mut last_cycle = 0u64;
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let parse = |s: &str, what: &str| -> Result<u64, TraceError> {
            s.parse().map_err(|_| TraceError::Parse {
                line: line_no,
                message: format!("bad {what}: {s:?}"),
            })
        };
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(TraceError::Parse {
                line: line_no,
                message: format!("expected 5 fields, found {}", fields.len()),
            });
        }
        let cycle = parse(fields[0], "cycle")?;
        if cycle < last_cycle {
            return Err(TraceError::Parse {
                line: line_no,
                message: format!("cycle {cycle} out of order (last {last_cycle})"),
            });
        }
        last_cycle = cycle;
        let len = parse(fields[3], "length")? as u16;
        if len == 0 {
            return Err(TraceError::Parse {
                line: line_no,
                message: "zero-length packet".into(),
            });
        }
        let class = class_from_code(fields[4]).ok_or_else(|| TraceError::Parse {
            line: line_no,
            message: format!("unknown class {:?}", fields[4]),
        })?;
        records.push(TraceRecord {
            cycle,
            src: NodeId::new(parse(fields[1], "src")? as usize),
            dst: NodeId::new(parse(fields[2], "dst")? as usize),
            len,
            class,
        });
    }
    Ok(records)
}

/// Wraps a traffic model and records everything it emits.
pub struct TraceRecorder<T> {
    inner: T,
    records: Vec<TraceRecord>,
}

impl<T: TrafficModel> TraceRecorder<T> {
    /// Starts recording `inner`.
    pub fn new(inner: T) -> Self {
        Self {
            inner,
            records: Vec::new(),
        }
    }

    /// The records captured so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Stops recording and returns the model and the captured trace.
    pub fn into_parts(self) -> (T, Vec<TraceRecord>) {
        (self.inner, self.records)
    }
}

impl<T: TrafficModel> TrafficModel for TraceRecorder<T> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn generate(&mut self, cycle: u64, sink: &mut dyn FnMut(PacketRequest)) {
        let records = &mut self.records;
        self.inner.generate(cycle, &mut |request| {
            records.push(TraceRecord {
                cycle,
                src: request.src,
                dst: request.dst,
                len: request.len,
                class: request.class,
            });
            sink(request);
        });
    }

    fn deliver(&mut self, cycle: u64, packet: &crate::DeliveredPacket) {
        self.inner.deliver(cycle, packet);
    }

    fn has_pending_work(&self) -> bool {
        self.inner.has_pending_work()
    }

    fn next_injection_cycle(&mut self, from: u64, horizon: u64) -> Option<u64> {
        // Recording is passive: skipped cycles emit nothing, so there is
        // nothing to record and the inner model's prediction stands.
        self.inner.next_injection_cycle(from, horizon)
    }
}

/// Replays a recorded trace, open-loop.
pub struct TraceReplay {
    records: Vec<TraceRecord>,
    next: usize,
    name: String,
}

impl TraceReplay {
    /// Creates a replay over records sorted by cycle.
    ///
    /// # Panics
    ///
    /// Panics if the records are not sorted by cycle.
    pub fn new(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        assert!(
            records.windows(2).all(|w| w[0].cycle <= w[1].cycle),
            "trace records must be sorted by cycle"
        );
        Self {
            records,
            next: 0,
            name: name.into(),
        }
    }

    /// Remaining (unreplayed) record count.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.next
    }
}

impl TrafficModel for TraceReplay {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(&mut self, cycle: u64, sink: &mut dyn FnMut(PacketRequest)) {
        while let Some(r) = self.records.get(self.next) {
            if r.cycle > cycle {
                break;
            }
            sink(PacketRequest {
                src: r.src,
                dst: r.dst,
                len: r.len,
                class: r.class,
            });
            self.next += 1;
        }
    }

    fn has_pending_work(&self) -> bool {
        self.next < self.records.len()
    }

    fn next_injection_cycle(&mut self, from: u64, horizon: u64) -> Option<u64> {
        match self.records.get(self.next) {
            // An overdue record (cycle < from) is emitted by the next
            // `generate` call, so the clamp reports "due immediately".
            Some(r) => Some(r.cycle.clamp(from, horizon)),
            None => Some(horizon),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticPattern, SyntheticTraffic};

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                cycle: 0,
                src: NodeId::new(1),
                dst: NodeId::new(2),
                len: 1,
                class: PacketClass::ReadRequest,
            },
            TraceRecord {
                cycle: 3,
                src: NodeId::new(2),
                dst: NodeId::new(1),
                len: 5,
                class: PacketClass::ReadResponse,
            },
            TraceRecord {
                cycle: 3,
                src: NodeId::new(0),
                dst: NodeId::new(7),
                len: 5,
                class: PacketClass::Data,
            },
        ]
    }

    #[test]
    fn write_read_roundtrip() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        let parsed = read_trace(&buf[..]).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header\n\n0 1 2 1 D\n  \n1 2 3 5 RS\n";
        let parsed = read_trace(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad_fields = read_trace("0 1 2 1\n".as_bytes()).unwrap_err();
        assert!(bad_fields.to_string().contains("line 1"));
        let bad_class = read_trace("0 1 2 1 XX\n".as_bytes()).unwrap_err();
        assert!(bad_class.to_string().contains("unknown class"));
        let bad_num = read_trace("zero 1 2 1 D\n".as_bytes()).unwrap_err();
        assert!(bad_num.to_string().contains("bad cycle"));
        let out_of_order = read_trace("5 1 2 1 D\n3 1 2 1 D\n".as_bytes()).unwrap_err();
        assert!(out_of_order.to_string().contains("out of order"));
        let zero_len = read_trace("0 1 2 0 D\n".as_bytes()).unwrap_err();
        assert!(zero_len.to_string().contains("zero-length"));
    }

    #[test]
    fn recorder_captures_synthetic_traffic() {
        let inner = SyntheticTraffic::new(SyntheticPattern::UniformRandom, 4, 4, 3, 0.3, 9);
        let mut rec = TraceRecorder::new(inner);
        let mut count = 0;
        for cycle in 0..200 {
            rec.generate(cycle, &mut |_r| count += 1);
        }
        assert_eq!(rec.records().len(), count);
        assert!(count > 0);
        let (_inner, records) = rec.into_parts();
        assert!(records.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    fn replay_reproduces_the_recording() {
        let inner = SyntheticTraffic::new(SyntheticPattern::Transpose, 4, 4, 2, 0.2, 4);
        let mut rec = TraceRecorder::new(inner);
        let mut original = Vec::new();
        for cycle in 0..300 {
            rec.generate(cycle, &mut |r| original.push((cycle, r)));
        }
        let (_, records) = rec.into_parts();
        let mut replay = TraceReplay::new("replay", records);
        assert!(replay.has_pending_work());
        let mut replayed = Vec::new();
        for cycle in 0..300 {
            replay.generate(cycle, &mut |r| replayed.push((cycle, r)));
        }
        assert_eq!(original, replayed);
        assert!(!replay.has_pending_work());
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn replay_catches_up_after_skipped_cycles() {
        let mut replay = TraceReplay::new("t", sample_records());
        let mut seen = Vec::new();
        // Jump straight to cycle 10: all three records must be emitted.
        replay.generate(10, &mut |r| seen.push(r));
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn replay_predicts_next_injection_from_the_records() {
        let mut replay = TraceReplay::new("t", sample_records());
        // First record is at cycle 0: due immediately.
        assert_eq!(replay.next_injection_cycle(0, 100), Some(0));
        let mut n = 0;
        replay.generate(0, &mut |_| n += 1);
        assert_eq!(n, 1);
        // Next records are at cycle 3; horizon clamps the answer.
        assert_eq!(replay.next_injection_cycle(1, 100), Some(3));
        assert_eq!(replay.next_injection_cycle(1, 2), Some(2));
        replay.generate(3, &mut |_| n += 1);
        assert_eq!(n, 3);
        // Exhausted trace: nothing before any horizon.
        assert_eq!(replay.next_injection_cycle(4, 100), Some(100));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_replay_rejected() {
        let mut records = sample_records();
        records.swap(0, 1);
        let _ = TraceReplay::new("bad", records);
    }
}
