//! Closed-loop CMP cache-coherence traffic model (trace substitute).
//!
//! Stands in for the paper's Simics-extracted traces (§V): 32 out-of-order
//! core proxies and 32 address-interleaved shared L2 banks exchange
//! directory-protocol messages over the network. Each core has a fixed number
//! of MSHRs (4 in the paper, after Kroft ISCA 1981) and stalls when they are
//! exhausted, so injection self-throttles against network latency exactly as
//! in the paper's methodology.
//!
//! Protocol (write-through, write-invalidate — paper §V):
//!
//! - **read**: core → bank 1-flit request; bank → core 5-flit response after
//!   the bank latency (plus memory latency on an L2 miss);
//! - **write**: core → bank 5-flit write-through; bank → core 1-flit ack;
//!   with some probability the bank also invalidates sharers (1-flit
//!   coherence messages), each of which returns a 1-flit ack to the bank;
//! - packet sizes follow the paper: an address fits in one 128-bit flit, an
//!   address + 64-byte block takes five flits.

use crate::{BenchmarkProfile, DeliveredPacket, PacketRequest, TrafficModel};
use noc_base::rng::Pcg32;
use noc_base::{NodeId, PacketClass};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The role an endpoint plays in the CMP.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum NodeRole {
    /// Processor core number `n`.
    Core(usize),
    /// L2 cache bank number `n`.
    Bank(usize),
}

/// Assignment of roles to network endpoints.
#[derive(Clone, Debug)]
pub struct CmpLayout {
    roles: Vec<NodeRole>,
    cores: Vec<NodeId>,
    banks: Vec<NodeId>,
}

impl CmpLayout {
    /// Builds a layout from an explicit role list.
    ///
    /// # Panics
    ///
    /// Panics if there is not at least one core and one bank, or if core /
    /// bank numbers are not exactly `0..count` in order of appearance.
    pub fn new(roles: Vec<NodeRole>) -> Self {
        let mut cores = Vec::new();
        let mut banks = Vec::new();
        for (i, role) in roles.iter().enumerate() {
            match *role {
                NodeRole::Core(n) => {
                    assert_eq!(n, cores.len(), "core numbering must be dense");
                    cores.push(NodeId::new(i));
                }
                NodeRole::Bank(n) => {
                    assert_eq!(n, banks.len(), "bank numbering must be dense");
                    banks.push(NodeId::new(i));
                }
            }
        }
        assert!(!cores.is_empty(), "need at least one core");
        assert!(!banks.is_empty(), "need at least one bank");
        Self {
            roles,
            cores,
            banks,
        }
    }

    /// The paper's CMP floorplan: routers with concentration 4, each
    /// attaching two cores then two banks (`num_routers * 4` nodes).
    pub fn paper_cmesh(num_routers: usize) -> Self {
        let mut roles = Vec::with_capacity(num_routers * 4);
        for r in 0..num_routers {
            roles.push(NodeRole::Core(2 * r));
            roles.push(NodeRole::Core(2 * r + 1));
            roles.push(NodeRole::Bank(2 * r));
            roles.push(NodeRole::Bank(2 * r + 1));
        }
        Self::new(roles)
    }

    /// A checkerboard layout for concentration-1 topologies: even nodes are
    /// cores, odd nodes are banks.
    pub fn alternating(num_nodes: usize) -> Self {
        let roles = (0..num_nodes)
            .map(|i| {
                if i % 2 == 0 {
                    NodeRole::Core(i / 2)
                } else {
                    NodeRole::Bank(i / 2)
                }
            })
            .collect();
        Self::new(roles)
    }

    /// Role of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn role(&self, node: NodeId) -> NodeRole {
        self.roles[node.index()]
    }

    /// Total endpoints.
    pub fn num_nodes(&self) -> usize {
        self.roles.len()
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Number of banks.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Endpoint of core `n`.
    pub fn core(&self, n: usize) -> NodeId {
        self.cores[n]
    }

    /// Endpoint of bank `n`.
    pub fn bank(&self, n: usize) -> NodeId {
        self.banks[n]
    }
}

/// Fixed system parameters of the CMP model (the paper's Table I; latencies
/// the OCR lost are documented choices, see DESIGN.md §5).
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct CmpConfig {
    /// MSHRs per core (outstanding-miss limit; 4 in the paper).
    pub mshrs_per_core: usize,
    /// L2 bank access latency in cycles.
    pub l2_latency: u64,
    /// Additional latency when the L2 bank misses to memory.
    pub mem_latency: u64,
    /// Probability an L2 access misses to memory.
    pub l2_miss_rate: f64,
    /// Flits in an address-only packet.
    pub addr_flits: u16,
    /// Flits in an address + cache-block packet.
    pub data_flits: u16,
}

impl CmpConfig {
    /// The paper's configuration: 4 MSHRs, 1-flit address packets, 5-flit
    /// data packets, 6-cycle L2 banks, 100-cycle memory at 10% L2 miss rate.
    pub fn paper() -> Self {
        Self {
            mshrs_per_core: 4,
            l2_latency: 6,
            mem_latency: 100,
            l2_miss_rate: 0.10,
            addr_flits: 1,
            data_flits: 5,
        }
    }
}

impl Default for CmpConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[derive(Clone, Debug)]
struct CoreState {
    free_mshrs: usize,
    last_bank: Option<usize>,
    bursting: bool,
}

/// Aggregate message counts, exposed for calibration tests and reports.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CmpStats {
    /// Read transactions issued.
    pub reads: u64,
    /// Write transactions issued.
    pub writes: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Packets emitted in total.
    pub packets: u64,
    /// Core-cycles spent fully stalled (all MSHRs busy) while in an active
    /// phase — the self-throttling back-pressure the network exerts on the
    /// cores. Lower network latency frees MSHRs sooner, so this is the
    /// closed-loop "IPC proxy" of the paper's future-work discussion.
    pub mshr_stall_cycles: u64,
    /// Core-cycles observed in an active (non-idle) phase.
    pub active_cycles: u64,
}

impl CmpStats {
    /// Fraction of active core-cycles lost to MSHR stalls (0 when no active
    /// cycles were observed).
    pub fn stall_fraction(&self) -> f64 {
        if self.active_cycles == 0 {
            0.0
        } else {
            self.mshr_stall_cycles as f64 / self.active_cycles as f64
        }
    }

    /// A relative core-progress proxy: the fraction of active cycles in
    /// which a core could issue if it wanted to (1 − stall fraction).
    pub fn progress_proxy(&self) -> f64 {
        1.0 - self.stall_fraction()
    }
}

/// The closed-loop CMP workload generator.
pub struct CmpTraffic {
    cfg: CmpConfig,
    layout: CmpLayout,
    profile: BenchmarkProfile,
    rng: Pcg32,
    cores: Vec<CoreState>,
    bank_weights: Vec<f64>,
    pending: BinaryHeap<Reverse<(u64, u64)>>,
    pending_payload: std::collections::HashMap<u64, PacketRequest>,
    next_event: u64,
    in_flight: u64,
    stats: CmpStats,
}

impl CmpTraffic {
    /// Creates the workload for one benchmark profile.
    pub fn new(cfg: CmpConfig, layout: CmpLayout, profile: BenchmarkProfile, seed: u64) -> Self {
        let cores = vec![
            CoreState {
                free_mshrs: cfg.mshrs_per_core,
                last_bank: None,
                bursting: false,
            };
            layout.num_cores()
        ];
        let bank_weights = (0..layout.num_banks())
            .map(|i| 1.0 / (1.0 + i as f64).powf(profile.hotspot_skew))
            .collect();
        Self {
            cfg,
            layout,
            profile,
            rng: Pcg32::seed_with_stream(seed, 0xc39),
            cores,
            bank_weights,
            pending: BinaryHeap::new(),
            pending_payload: std::collections::HashMap::new(),
            next_event: 0,
            in_flight: 0,
            stats: CmpStats::default(),
        }
    }

    /// Message counters accumulated so far.
    pub fn stats(&self) -> CmpStats {
        self.stats
    }

    /// The layout in use.
    pub fn layout(&self) -> &CmpLayout {
        &self.layout
    }

    fn schedule(&mut self, at: u64, request: PacketRequest) {
        let id = self.next_event;
        self.next_event += 1;
        self.pending.push(Reverse((at, id)));
        self.pending_payload.insert(id, request);
    }

    fn pick_bank(&mut self, core: usize) -> usize {
        if let Some(last) = self.cores[core].last_bank {
            if self.rng.next_bool(self.profile.bank_locality) {
                return last;
            }
        }
        self.rng
            .next_weighted(&self.bank_weights)
            .expect("bank weights are positive")
    }

    /// Samples the number of sharers to invalidate: geometric with mean
    /// `avg_sharers`, clamped to the available cores.
    fn sample_sharers(&mut self) -> usize {
        let mean = self.profile.avg_sharers.max(1.0);
        let p = 1.0 / mean;
        let mut k = 1;
        while k < self.layout.num_cores() - 1 && !self.rng.next_bool(p) {
            k += 1;
        }
        k
    }

    fn issue_from_core(&mut self, core: usize, sink: &mut dyn FnMut(PacketRequest)) {
        let bank = self.pick_bank(core);
        self.cores[core].last_bank = Some(bank);
        self.cores[core].free_mshrs -= 1;
        let src = self.layout.core(core);
        let dst = self.layout.bank(bank);
        let write = self.rng.next_bool(self.profile.write_fraction);
        let request = if write {
            self.stats.writes += 1;
            PacketRequest {
                src,
                dst,
                len: self.cfg.data_flits,
                class: PacketClass::WriteRequest,
            }
        } else {
            self.stats.reads += 1;
            PacketRequest {
                src,
                dst,
                len: self.cfg.addr_flits,
                class: PacketClass::ReadRequest,
            }
        };
        self.emit(request, sink);
    }

    fn emit(&mut self, request: PacketRequest, sink: &mut dyn FnMut(PacketRequest)) {
        self.in_flight += 1;
        self.stats.packets += 1;
        sink(request);
    }

    fn issue_probability(&self) -> f64 {
        if self.profile.burstiness > 0.0 {
            (self.profile.miss_rate * 2.0).min(1.0)
        } else {
            self.profile.miss_rate
        }
    }

    fn core_of(&self, node: NodeId) -> Option<usize> {
        match self.layout.role(node) {
            NodeRole::Core(n) => Some(n),
            NodeRole::Bank(_) => None,
        }
    }

    fn bank_latency(&mut self) -> u64 {
        let mut latency = self.cfg.l2_latency;
        if self.rng.next_bool(self.cfg.l2_miss_rate) {
            latency += self.cfg.mem_latency;
        }
        latency
    }
}

impl TrafficModel for CmpTraffic {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn generate(&mut self, cycle: u64, sink: &mut dyn FnMut(PacketRequest)) {
        // Emit scheduled bank responses and coherence messages that are due.
        while let Some(&Reverse((at, id))) = self.pending.peek() {
            if at > cycle {
                break;
            }
            self.pending.pop();
            let request = self
                .pending_payload
                .remove(&id)
                .expect("scheduled payload present");
            self.emit(request, sink);
        }

        // Core-side issue with MSHR self-throttling and burst modulation.
        let issue_p = self.issue_probability();
        for core in 0..self.cores.len() {
            if self.profile.burstiness > 0.0 {
                let stay = self.profile.burstiness;
                let state = self.cores[core].bursting;
                let flip = !self.rng.next_bool(stay);
                if flip {
                    self.cores[core].bursting = !state;
                }
                if !self.cores[core].bursting {
                    continue;
                }
            }
            self.stats.active_cycles += 1;
            if self.cores[core].free_mshrs == 0 {
                self.stats.mshr_stall_cycles += 1;
                continue;
            }
            if self.rng.next_bool(issue_p) {
                self.issue_from_core(core, sink);
            }
        }
    }

    fn deliver(&mut self, cycle: u64, packet: &DeliveredPacket) {
        self.in_flight = self.in_flight.saturating_sub(1);
        match packet.class {
            PacketClass::ReadRequest => {
                let latency = self.bank_latency();
                self.schedule(
                    cycle + latency,
                    PacketRequest {
                        src: packet.dst,
                        dst: packet.src,
                        len: self.cfg.data_flits,
                        class: PacketClass::ReadResponse,
                    },
                );
            }
            PacketClass::WriteRequest => {
                let latency = self.bank_latency();
                self.schedule(
                    cycle + latency,
                    PacketRequest {
                        src: packet.dst,
                        dst: packet.src,
                        len: self.cfg.addr_flits,
                        class: PacketClass::WriteAck,
                    },
                );
                if self.rng.next_bool(self.profile.coherence_fraction) {
                    let writer = self.core_of(packet.src);
                    let sharers = self.sample_sharers();
                    // BTreeSet keeps invalidation order deterministic.
                    let mut chosen = std::collections::BTreeSet::new();
                    let candidates = self.layout.num_cores();
                    let mut guard = 0;
                    while chosen.len() < sharers && guard < 16 * candidates {
                        guard += 1;
                        let c = self.rng.next_index(candidates);
                        if Some(c) != writer {
                            chosen.insert(c);
                        }
                    }
                    for c in chosen {
                        self.stats.invalidations += 1;
                        self.schedule(
                            cycle + self.cfg.l2_latency,
                            PacketRequest {
                                src: packet.dst,
                                dst: self.layout.core(c),
                                len: self.cfg.addr_flits,
                                class: PacketClass::Coherence,
                            },
                        );
                    }
                }
            }
            PacketClass::ReadResponse | PacketClass::WriteAck => {
                if let Some(core) = self.core_of(packet.dst) {
                    self.cores[core].free_mshrs =
                        (self.cores[core].free_mshrs + 1).min(self.cfg.mshrs_per_core);
                }
            }
            PacketClass::Coherence => {
                // Invalidation arriving at a core: acknowledge to the bank.
                // Acks arriving back at the bank terminate silently.
                if self.core_of(packet.dst).is_some() {
                    self.schedule(
                        cycle + 1,
                        PacketRequest {
                            src: packet.dst,
                            dst: packet.src,
                            len: self.cfg.addr_flits,
                            class: PacketClass::Coherence,
                        },
                    );
                }
            }
            PacketClass::Data => {}
        }
    }

    fn has_pending_work(&self) -> bool {
        self.in_flight > 0 || !self.pending.is_empty()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CmpTraffic {
        let layout = CmpLayout::paper_cmesh(4); // 8 cores, 8 banks
        CmpTraffic::new(
            CmpConfig::paper(),
            layout,
            *BenchmarkProfile::by_name("fma3d").unwrap(),
            7,
        )
    }

    /// Runs the model against an ideal zero-latency "network".
    fn run_ideal(traffic: &mut CmpTraffic, cycles: u64) -> Vec<PacketRequest> {
        let mut all = Vec::new();
        for cycle in 0..cycles {
            let mut emitted = Vec::new();
            traffic.generate(cycle, &mut |r| emitted.push(r));
            for r in &emitted {
                let delivered = DeliveredPacket {
                    id: noc_base::PacketId::new(0),
                    src: r.src,
                    dst: r.dst,
                    len: r.len,
                    class: r.class,
                    injected_at: cycle,
                    delivered_at: cycle + 10,
                };
                traffic.deliver(cycle + 10, &delivered);
            }
            all.extend(emitted);
        }
        all
    }

    #[test]
    fn layout_paper_cmesh_roles() {
        let l = CmpLayout::paper_cmesh(16);
        assert_eq!(l.num_nodes(), 64);
        assert_eq!(l.num_cores(), 32);
        assert_eq!(l.num_banks(), 32);
        assert_eq!(l.role(NodeId::new(0)), NodeRole::Core(0));
        assert_eq!(l.role(NodeId::new(2)), NodeRole::Bank(0));
        assert_eq!(l.core(2), NodeId::new(4));
        assert_eq!(l.bank(2), NodeId::new(6));
    }

    #[test]
    fn alternating_layout_roles() {
        let l = CmpLayout::alternating(8);
        assert_eq!(l.num_cores(), 4);
        assert_eq!(l.role(NodeId::new(3)), NodeRole::Bank(1));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_numbering_rejected() {
        let _ = CmpLayout::new(vec![NodeRole::Core(1), NodeRole::Bank(0)]);
    }

    #[test]
    fn requests_flow_core_to_bank_and_back() {
        let mut t = small();
        let reqs = run_ideal(&mut t, 2000);
        assert!(!reqs.is_empty());
        let outbound = reqs.iter().filter(|r| {
            matches!(
                r.class,
                PacketClass::ReadRequest | PacketClass::WriteRequest
            )
        });
        for r in outbound {
            assert!(matches!(t.layout.role(r.src), NodeRole::Core(_)));
            assert!(matches!(t.layout.role(r.dst), NodeRole::Bank(_)));
        }
        let responses = reqs
            .iter()
            .filter(|r| matches!(r.class, PacketClass::ReadResponse | PacketClass::WriteAck))
            .count();
        assert!(responses > 0, "banks should respond");
    }

    #[test]
    fn packet_sizes_follow_the_paper() {
        let mut t = small();
        for r in run_ideal(&mut t, 2000) {
            match r.class {
                PacketClass::ReadRequest | PacketClass::WriteAck | PacketClass::Coherence => {
                    assert_eq!(r.len, 1)
                }
                PacketClass::ReadResponse | PacketClass::WriteRequest => assert_eq!(r.len, 5),
                PacketClass::Data => panic!("cmp model never emits Data"),
            }
        }
    }

    #[test]
    fn mshrs_bound_outstanding_misses() {
        // With no deliveries at all, each core can issue at most 4 misses.
        let mut t = small();
        let mut total = 0;
        for cycle in 0..50_000 {
            t.generate(cycle, &mut |_r| total += 1);
        }
        assert_eq!(total, 8 * 4, "8 cores x 4 MSHRs");
        assert!(t.has_pending_work());
    }

    #[test]
    fn deliveries_refill_mshrs() {
        let mut t = small();
        let reqs = run_ideal(&mut t, 5000);
        // Far more than the MSHR-limited 32 packets must flow.
        assert!(reqs.len() > 200, "only {} packets", reqs.len());
    }

    #[test]
    fn stats_track_mix() {
        let mut t = small();
        let _ = run_ideal(&mut t, 5000);
        let s = t.stats();
        assert!(s.reads > 0 && s.writes > 0);
        let wf = s.writes as f64 / (s.reads + s.writes) as f64;
        assert!((wf - 0.30).abs() < 0.08, "write fraction {wf}");
    }

    #[test]
    fn skewed_profile_concentrates_on_low_banks() {
        let layout = CmpLayout::paper_cmesh(8);
        let mut t = CmpTraffic::new(
            CmpConfig::paper(),
            layout,
            *BenchmarkProfile::by_name("jbb").unwrap(),
            3,
        );
        let reqs = run_ideal(&mut t, 8000);
        let mut per_bank = vec![0usize; t.layout.num_banks()];
        for r in &reqs {
            if let NodeRole::Bank(b) = t.layout.role(r.dst) {
                if matches!(
                    r.class,
                    PacketClass::ReadRequest | PacketClass::WriteRequest
                ) {
                    per_bank[b] += 1;
                }
            }
        }
        let first_half: usize = per_bank[..8].iter().sum();
        let second_half: usize = per_bank[8..].iter().sum();
        assert!(
            first_half > second_half * 2,
            "skew should load low banks: {first_half} vs {second_half}"
        );
    }

    #[test]
    fn bank_locality_repeats_destinations() {
        let layout = CmpLayout::paper_cmesh(8);
        let mut profile = *BenchmarkProfile::by_name("mgrid").unwrap();
        profile.bank_locality = 0.9;
        profile.burstiness = 0.0;
        let mut t = CmpTraffic::new(CmpConfig::paper(), layout, profile, 5);
        let reqs = run_ideal(&mut t, 6000);
        // Per core, count consecutive same-bank requests.
        let mut last: std::collections::HashMap<NodeId, NodeId> = Default::default();
        let (mut hits, mut total) = (0usize, 0usize);
        for r in reqs.iter().filter(|r| {
            matches!(
                r.class,
                PacketClass::ReadRequest | PacketClass::WriteRequest
            )
        }) {
            if let Some(prev) = last.insert(r.src, r.dst) {
                total += 1;
                if prev == r.dst {
                    hits += 1;
                }
            }
        }
        let frac = hits as f64 / total.max(1) as f64;
        assert!(frac > 0.75, "locality {frac}");
    }

    #[test]
    fn determinism_by_seed() {
        let mk = || {
            CmpTraffic::new(
                CmpConfig::paper(),
                CmpLayout::paper_cmesh(4),
                *BenchmarkProfile::by_name("fft").unwrap(),
                11,
            )
        };
        let (mut a, mut b) = (mk(), mk());
        assert_eq!(run_ideal(&mut a, 1000), run_ideal(&mut b, 1000));
    }

    #[test]
    fn pending_work_drains() {
        let mut t = small();
        let _ = run_ideal(&mut t, 2000);
        // Keep delivering without new issue: eventually drains.
        for cycle in 2000..4000 {
            let mut emitted = Vec::new();
            // Freeze cores by setting miss rate to zero via burst state: just
            // pop pending events and deliver them.
            t.generate(cycle, &mut |r| emitted.push(r));
            for r in emitted {
                let d = DeliveredPacket {
                    id: noc_base::PacketId::new(0),
                    src: r.src,
                    dst: r.dst,
                    len: r.len,
                    class: r.class,
                    injected_at: cycle,
                    delivered_at: cycle + 1,
                };
                t.deliver(cycle + 1, &d);
            }
        }
        // in_flight for core-issued packets is bounded by total MSHRs, so the
        // model never accumulates unbounded pending work.
        assert!(t.stats().packets > 0);
    }
}
