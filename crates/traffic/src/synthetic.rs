//! Open-loop synthetic traffic patterns (paper §VI.B, Fig. 12).
//!
//! The paper evaluates uniform random (UR), bit complement (BC) and bit
//! permutation / matrix transpose (BP); tornado, nearest-neighbor and hotspot
//! are provided as extensions for wider load–latency studies. Injection is a
//! per-node Bernoulli process calibrated in flits/node/cycle: a node with
//! offered load `r` and packet length `L` starts a new packet each cycle with
//! probability `r / L`.

use crate::{PacketRequest, TrafficModel};
use noc_base::rng::Pcg32;
use noc_base::{NodeId, PacketClass};

/// A destination-selection rule over a logical `cols × rows` grid of nodes.
#[derive(Clone, PartialEq, Debug)]
pub enum SyntheticPattern {
    /// Every node sends to a uniformly random other node.
    UniformRandom,
    /// Node `(x, y)` sends to `(cols-1-x, rows-1-y)` — on power-of-two grids
    /// this is the classic bit-complement permutation. Longest average
    /// Manhattan distance of the three paper patterns.
    BitComplement,
    /// Matrix transpose: node `(x, y)` sends to `(y, x)`; nodes on the
    /// diagonal send uniformly at random (they would otherwise self-send).
    /// Requires a square grid.
    Transpose,
    /// Node `(x, y)` sends to `((x + ⌈cols/2⌉ - 1) mod cols, y)` — adversarial
    /// for rings, mild on meshes. Extension beyond the paper.
    Tornado,
    /// Node `(x, y)` sends to its east neighbor `((x+1) mod cols, y)`.
    /// Extension beyond the paper.
    Neighbor,
    /// With probability `fraction`, send to one of `spots`; otherwise
    /// uniformly random. Extension beyond the paper.
    Hotspot {
        /// Probability of targeting a hotspot.
        fraction: f64,
        /// Hotspot destinations.
        spots: Vec<NodeId>,
    },
}

impl SyntheticPattern {
    /// Short name used in experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            SyntheticPattern::UniformRandom => "UR",
            SyntheticPattern::BitComplement => "BC",
            SyntheticPattern::Transpose => "BP",
            SyntheticPattern::Tornado => "TOR",
            SyntheticPattern::Neighbor => "NBR",
            SyntheticPattern::Hotspot { .. } => "HOT",
        }
    }

    /// Picks the destination for a packet from `src`.
    fn destination(&self, src: usize, cols: usize, rows: usize, rng: &mut Pcg32) -> usize {
        let n = cols * rows;
        let uniform_other = |rng: &mut Pcg32| {
            let mut d = rng.next_index(n - 1);
            if d >= src {
                d += 1;
            }
            d
        };
        match self {
            SyntheticPattern::UniformRandom => uniform_other(rng),
            SyntheticPattern::BitComplement => {
                let (x, y) = (src % cols, src / cols);
                (rows - 1 - y) * cols + (cols - 1 - x)
            }
            SyntheticPattern::Transpose => {
                let (x, y) = (src % cols, src / cols);
                if x == y {
                    uniform_other(rng)
                } else {
                    x * cols + y
                }
            }
            SyntheticPattern::Tornado => {
                let (x, y) = (src % cols, src / cols);
                let dx = (x + cols.div_ceil(2) - 1) % cols;
                if dx == x {
                    uniform_other(rng)
                } else {
                    y * cols + dx
                }
            }
            SyntheticPattern::Neighbor => {
                let (x, y) = (src % cols, src / cols);
                y * cols + (x + 1) % cols
            }
            SyntheticPattern::Hotspot { fraction, spots } => {
                if !spots.is_empty() && rng.next_bool(*fraction) {
                    let d = spots[rng.next_index(spots.len())].index();
                    if d == src {
                        uniform_other(rng)
                    } else {
                        d
                    }
                } else {
                    uniform_other(rng)
                }
            }
        }
    }
}

/// An open-loop synthetic workload over a `cols × rows` logical node grid.
#[derive(Clone, Debug)]
pub struct SyntheticTraffic {
    pattern: SyntheticPattern,
    cols: usize,
    rows: usize,
    packet_len: u16,
    start_prob: f64,
    rng: Pcg32,
    name: String,
    // Fast-forward lookahead state (`TrafficModel::next_injection_cycle`).
    // The lookahead answers by actually drawing future cycles with the same
    // RNG calls `generate` would make, so the consumed random stream — and
    // therefore every emitted request — is identical whether or not the
    // query is used. Cycles `< advanced_to` have had their draws consumed;
    // `pending` holds the requests drawn for cycle `pending_cycle`, replayed
    // when `generate(pending_cycle)` is eventually called.
    pending: Vec<PacketRequest>,
    pending_cycle: u64,
    advanced_to: u64,
}

impl SyntheticTraffic {
    /// Creates a synthetic workload.
    ///
    /// `offered_load` is in flits/node/cycle; with `packet_len`-flit packets
    /// each node starts a packet with probability `offered_load / packet_len`
    /// per cycle.
    ///
    /// # Panics
    ///
    /// Panics if a dimension or `packet_len` is zero, if `offered_load` is
    /// not in `(0, 1]`, if the grid has fewer than two nodes, or if
    /// [`SyntheticPattern::Transpose`] is used on a non-square grid.
    pub fn new(
        pattern: SyntheticPattern,
        cols: usize,
        rows: usize,
        packet_len: u16,
        offered_load: f64,
        seed: u64,
    ) -> Self {
        assert!(cols > 0 && rows > 0, "grid dimensions must be nonzero");
        assert!(cols * rows >= 2, "need at least two nodes");
        assert!(packet_len >= 1, "packets must have at least one flit");
        assert!(
            offered_load > 0.0 && offered_load <= 1.0,
            "offered load must be in (0, 1] flits/node/cycle"
        );
        if matches!(pattern, SyntheticPattern::Transpose) {
            assert_eq!(cols, rows, "transpose requires a square grid");
        }
        let name = format!("{}@{:.2}", pattern.label(), offered_load);
        Self {
            pattern,
            cols,
            rows,
            packet_len,
            start_prob: offered_load / packet_len as f64,
            rng: Pcg32::seed_with_stream(seed, 0x7ea),
            name,
            pending: Vec::new(),
            pending_cycle: 0,
            advanced_to: 0,
        }
    }

    /// Performs the per-cycle Bernoulli/destination draws for one cycle, in
    /// ascending node order — the single source of the RNG call sequence for
    /// both `generate` and the fast-forward lookahead.
    fn draw_cycle(&mut self, sink: &mut dyn FnMut(PacketRequest)) {
        for src in 0..self.num_nodes() {
            if self.rng.next_bool(self.start_prob) {
                let dst = self
                    .pattern
                    .destination(src, self.cols, self.rows, &mut self.rng);
                debug_assert_ne!(dst, src, "synthetic pattern self-send");
                sink(PacketRequest {
                    src: NodeId::new(src),
                    dst: NodeId::new(dst),
                    len: self.packet_len,
                    class: PacketClass::Data,
                });
            }
        }
    }

    /// The pattern in use.
    pub fn pattern(&self) -> &SyntheticPattern {
        &self.pattern
    }

    /// Number of nodes on the grid.
    pub fn num_nodes(&self) -> usize {
        self.cols * self.rows
    }
}

impl TrafficModel for SyntheticTraffic {
    fn name(&self) -> &str {
        &self.name
    }

    fn generate(&mut self, cycle: u64, sink: &mut dyn FnMut(PacketRequest)) {
        if cycle < self.advanced_to {
            // The lookahead already drew this cycle: replay its (possibly
            // empty) result without touching the RNG again.
            if cycle == self.pending_cycle {
                for r in self.pending.drain(..) {
                    sink(r);
                }
            }
            return;
        }
        self.advanced_to = cycle + 1;
        self.draw_cycle(sink);
    }

    fn next_injection_cycle(&mut self, from: u64, horizon: u64) -> Option<u64> {
        if !self.pending.is_empty() {
            return Some(self.pending_cycle.clamp(from, horizon));
        }
        let mut t = self.advanced_to.max(from);
        while t < horizon {
            let mut pending = std::mem::take(&mut self.pending);
            self.draw_cycle(&mut |r| pending.push(r));
            self.pending = pending;
            self.advanced_to = t + 1;
            if !self.pending.is_empty() {
                self.pending_cycle = t;
                return Some(t);
            }
            t += 1;
        }
        Some(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(traffic: &mut SyntheticTraffic, cycles: u64) -> Vec<PacketRequest> {
        let mut out = Vec::new();
        for c in 0..cycles {
            traffic.generate(c, &mut |r| out.push(r));
        }
        out
    }

    #[test]
    fn offered_load_is_calibrated() {
        let mut t = SyntheticTraffic::new(SyntheticPattern::UniformRandom, 8, 8, 5, 0.4, 1);
        let cycles = 20_000u64;
        let reqs = collect(&mut t, cycles);
        let flits: u64 = reqs.iter().map(|r| r.len as u64).sum();
        let load = flits as f64 / (cycles as f64 * 64.0);
        assert!((load - 0.4).abs() < 0.02, "measured load {load}");
    }

    #[test]
    fn uniform_never_self_sends_and_covers_nodes() {
        let mut t = SyntheticTraffic::new(SyntheticPattern::UniformRandom, 4, 4, 1, 0.5, 2);
        let reqs = collect(&mut t, 5000);
        assert!(reqs.iter().all(|r| r.src != r.dst));
        let dsts: std::collections::HashSet<_> = reqs.iter().map(|r| r.dst).collect();
        assert_eq!(dsts.len(), 16, "every node should be a destination");
    }

    #[test]
    fn bit_complement_is_the_coordinate_complement() {
        let p = SyntheticPattern::BitComplement;
        let mut rng = Pcg32::seed_from_u64(0);
        // Node (0,0) on 4x4 -> (3,3) = 15; node (1,2)=9 -> (2,1)=6.
        assert_eq!(p.destination(0, 4, 4, &mut rng), 15);
        assert_eq!(p.destination(9, 4, 4, &mut rng), 6);
    }

    #[test]
    fn transpose_swaps_coordinates_and_diagonal_randomizes() {
        let p = SyntheticPattern::Transpose;
        let mut rng = Pcg32::seed_from_u64(0);
        // (1,0)=1 -> (0,1)=4.
        assert_eq!(p.destination(1, 4, 4, &mut rng), 4);
        // Diagonal node (2,2)=10 must not self-send.
        for _ in 0..100 {
            assert_ne!(p.destination(10, 4, 4, &mut rng), 10);
        }
    }

    #[test]
    fn bit_complement_has_longer_distance_than_uniform() {
        // Average Manhattan distance: BC = cols-1+rows-1 ... per-node constant
        // complement; sanity-check it exceeds the uniform average (~2/3 * k).
        let bc = SyntheticPattern::BitComplement;
        let mut rng = Pcg32::seed_from_u64(3);
        let dist = |a: usize, b: usize| {
            let (ax, ay) = (a % 8, a / 8);
            let (bx, by) = (b % 8, b / 8);
            (ax.abs_diff(bx) + ay.abs_diff(by)) as f64
        };
        let bc_avg: f64 = (0..64)
            .map(|s| dist(s, bc.destination(s, 8, 8, &mut rng)))
            .sum::<f64>()
            / 64.0;
        let ur = SyntheticPattern::UniformRandom;
        let ur_avg: f64 = (0..64)
            .flat_map(|s| (0..20).map(move |_| s))
            .map(|s| {
                let mut r = Pcg32::seed_from_u64(s as u64 + 99);
                dist(s, ur.destination(s, 8, 8, &mut r))
            })
            .sum::<f64>()
            / (64.0 * 20.0);
        assert!(bc_avg > ur_avg, "bc={bc_avg} ur={ur_avg}");
    }

    #[test]
    fn tornado_and_neighbor_stay_in_row() {
        let mut rng = Pcg32::seed_from_u64(4);
        for src in 0..32usize {
            let d1 = SyntheticPattern::Tornado.destination(src, 8, 4, &mut rng);
            let d2 = SyntheticPattern::Neighbor.destination(src, 8, 4, &mut rng);
            assert_eq!(d1 / 8, src / 8, "tornado stays in row");
            assert_eq!(d2 / 8, src / 8, "neighbor stays in row");
            assert_ne!(d2, src);
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let spots = vec![NodeId::new(0)];
        let mut t = SyntheticTraffic::new(
            SyntheticPattern::Hotspot {
                fraction: 0.5,
                spots,
            },
            4,
            4,
            1,
            0.5,
            7,
        );
        let reqs = collect(&mut t, 4000);
        let to_spot = reqs.iter().filter(|r| r.dst == NodeId::new(0)).count();
        let frac = to_spot as f64 / reqs.len() as f64;
        assert!(frac > 0.4, "hotspot fraction {frac}");
    }

    #[test]
    fn determinism_by_seed() {
        let mut a = SyntheticTraffic::new(SyntheticPattern::UniformRandom, 4, 4, 3, 0.2, 42);
        let mut b = SyntheticTraffic::new(SyntheticPattern::UniformRandom, 4, 4, 3, 0.2, 42);
        assert_eq!(collect(&mut a, 500), collect(&mut b, 500));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn transpose_rejects_non_square() {
        let _ = SyntheticTraffic::new(SyntheticPattern::Transpose, 4, 2, 1, 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn zero_load_rejected() {
        let _ = SyntheticTraffic::new(SyntheticPattern::UniformRandom, 4, 4, 1, 0.0, 0);
    }

    #[test]
    fn lookahead_preserves_the_request_stream() {
        // Interleaving next_injection_cycle queries with generate must yield
        // exactly the stream a plain per-cycle generate loop yields: the
        // lookahead consumes the same RNG draws in the same order and
        // replays its buffered requests.
        let mut plain = SyntheticTraffic::new(SyntheticPattern::UniformRandom, 4, 4, 3, 0.02, 11);
        let mut skipping = plain.clone();
        let reference = collect(&mut plain, 2_000);

        let mut seen = Vec::new();
        let mut cycle = 0u64;
        while cycle < 2_000 {
            let t = skipping
                .next_injection_cycle(cycle, 2_000)
                .expect("synthetic traffic always predicts");
            assert!(t >= cycle && t <= 2_000, "lookahead out of range: {t}");
            // Skip straight to t without calling generate for [cycle, t).
            cycle = t;
            if cycle >= 2_000 {
                break;
            }
            skipping.generate(cycle, &mut |r| seen.push(r));
            cycle += 1;
        }
        assert_eq!(seen, reference);
    }

    #[test]
    fn generate_after_partial_lookahead_replays_drawn_cycles() {
        // When the engine does NOT skip (e.g. the network was busy), the
        // cycles the lookahead pre-drew must still replay correctly through
        // per-cycle generate calls.
        let mut plain = SyntheticTraffic::new(SyntheticPattern::Transpose, 4, 4, 2, 0.05, 3);
        let mut peeked = plain.clone();
        let reference = collect(&mut plain, 500);

        let _ = peeked.next_injection_cycle(0, 500);
        let mut seen = Vec::new();
        for c in 0..500 {
            peeked.generate(c, &mut |r| seen.push(r));
            if c == 100 {
                // Query again mid-run; must not disturb the stream.
                let _ = peeked.next_injection_cycle(101, 500);
            }
        }
        assert_eq!(seen, reference);
    }

    #[test]
    fn labels_are_paper_names() {
        assert_eq!(SyntheticPattern::UniformRandom.label(), "UR");
        assert_eq!(SyntheticPattern::BitComplement.label(), "BC");
        assert_eq!(SyntheticPattern::Transpose.label(), "BP");
    }
}
