#![warn(missing_docs)]

//! Traffic models for the pseudo-circuit NoC simulator.
//!
//! Three families of workload drive the paper's evaluation:
//!
//! - [`synthetic`] — open-loop synthetic patterns (uniform random, bit
//!   complement, bit permutation/transpose, plus tornado / neighbor / hotspot
//!   extensions) injected at a configurable offered load (paper §VI.B);
//! - [`cmp`] — a closed-loop CMP cache-coherence workload model standing in
//!   for the paper's Simics traces (see DESIGN.md §5): out-of-order core
//!   proxies with 4 MSHRs each (self-throttling, Kroft ISCA 1981),
//!   address-interleaved shared L2 banks, and a write-through /
//!   write-invalidate directory protocol generating 1-flit address packets
//!   and 5-flit data packets;
//! - [`trace`] — record/replay of packet traces, mirroring the paper's
//!   trace-driven methodology.
//!
//! All models implement [`TrafficModel`]: once per cycle the simulator asks
//! the model to [`generate`](TrafficModel::generate) packet requests, and
//! notifies it of every packet [`deliver`](TrafficModel::deliver)ed so
//! closed-loop models can progress their transactions.

pub mod cmp;
pub mod profiles;
pub mod synthetic;
pub mod trace;

pub use cmp::{CmpConfig, CmpLayout, CmpStats, CmpTraffic, NodeRole};
pub use profiles::BenchmarkProfile;
pub use synthetic::{SyntheticPattern, SyntheticTraffic};
pub use trace::{read_trace, write_trace, TraceError, TraceRecord, TraceRecorder, TraceReplay};

use noc_base::{NodeId, PacketClass, PacketId};

/// A request to inject one packet, produced by a traffic model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PacketRequest {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Length in flits (≥ 1).
    pub len: u16,
    /// Semantic class (statistics and closed-loop bookkeeping).
    pub class: PacketClass,
}

/// A packet that completed delivery, reported back to the traffic model.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeliveredPacket {
    /// The packet's identifier.
    pub id: PacketId,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Length in flits.
    pub len: u16,
    /// Semantic class.
    pub class: PacketClass,
    /// Cycle the packet entered the source queue.
    pub injected_at: u64,
    /// Cycle the tail flit was ejected at the destination.
    pub delivered_at: u64,
}

/// A workload: a stream of packet injection requests, optionally reacting to
/// deliveries (closed-loop models).
pub trait TrafficModel: Send {
    /// Short human-readable name (e.g. `"uniform@0.30"` or `"fma3d"`).
    fn name(&self) -> &str;

    /// Produces this cycle's injection requests through `sink`.
    ///
    /// Called with non-decreasing `cycle` values. The simulator calls this
    /// once per simulated cycle, except that it may skip cycles the model
    /// itself declared empty via
    /// [`next_injection_cycle`](Self::next_injection_cycle) — a model that
    /// never returns `Some` from that query is called exactly once per cycle.
    fn generate(&mut self, cycle: u64, sink: &mut dyn FnMut(PacketRequest));

    /// Fast-forward query: the earliest cycle in `[from, horizon]` at which
    /// this model may emit an injection request.
    ///
    /// Returning `Some(t)` is a guarantee that [`generate`](Self::generate)
    /// emits nothing for any cycle in `[from, t)`, which lets the simulator
    /// skip those cycles entirely (their `generate` calls included) when the
    /// network is otherwise quiescent. `Some(horizon)` means "nothing before
    /// the horizon". `t == from` means an injection is due immediately.
    ///
    /// The default `None` opts out: the model cannot predict its own future
    /// (e.g. closed-loop models whose next injection depends on deliveries),
    /// and the simulator must call `generate` every cycle.
    ///
    /// Implementations that consume randomness to answer (RNG lookahead)
    /// must buffer the drawn requests and replay them from `generate`, so
    /// the emitted request stream is identical whether or not this query is
    /// ever called.
    fn next_injection_cycle(&mut self, from: u64, horizon: u64) -> Option<u64> {
        let _ = (from, horizon);
        None
    }

    /// Notifies the model that a packet finished delivery (tail ejected).
    fn deliver(&mut self, cycle: u64, packet: &DeliveredPacket) {
        let _ = (cycle, packet);
    }

    /// Whether the model still holds internal future work (in-flight
    /// transactions or scheduled responses). Open-loop models return `false`.
    fn has_pending_work(&self) -> bool {
        false
    }

    /// Downcasting hook so callers can recover model-specific statistics
    /// after a simulation run (e.g. [`CmpTraffic::stats`]). Models opt in by
    /// returning `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;
    impl TrafficModel for Null {
        fn name(&self) -> &str {
            "null"
        }
        fn generate(&mut self, _cycle: u64, _sink: &mut dyn FnMut(PacketRequest)) {}
    }

    #[test]
    fn default_trait_methods_are_inert() {
        let mut model = Null;
        assert!(!model.has_pending_work());
        assert_eq!(model.next_injection_cycle(0, 100), None);
        let pkt = DeliveredPacket {
            id: PacketId::new(1),
            src: NodeId::new(0),
            dst: NodeId::new(1),
            len: 1,
            class: PacketClass::Data,
            injected_at: 0,
            delivered_at: 5,
        };
        model.deliver(5, &pkt); // must not panic
        assert_eq!(model.name(), "null");
    }
}
