//! Property-based tests for the text trace format: writing any valid record
//! sequence and reading it back is the identity, whitespace and comments
//! never change the parse, and malformed lines are rejected with the right
//! line number instead of being silently dropped or misread.

use noc_base::{NodeId, PacketClass};
use noc_traffic::{read_trace, write_trace, TraceRecord, TraceReplay, TrafficModel};
use proptest::prelude::*;

const CLASSES: [PacketClass; 6] = [
    PacketClass::Data,
    PacketClass::ReadRequest,
    PacketClass::ReadResponse,
    PacketClass::WriteRequest,
    PacketClass::WriteAck,
    PacketClass::Coherence,
];

/// A sorted-by-cycle record vector, the invariant `write_trace` callers
/// uphold (recorders emit in cycle order, `TraceReplay::new` asserts it).
fn records_strategy() -> impl Strategy<Value = Vec<TraceRecord>> {
    prop::collection::vec(
        (
            0u64..10_000,
            0usize..4096,
            0usize..4096,
            1u16..=64,
            0usize..CLASSES.len(),
        ),
        0..64,
    )
    .prop_map(|raw| {
        let mut cycles: Vec<u64> = raw.iter().map(|r| r.0).collect();
        cycles.sort_unstable();
        raw.into_iter()
            .zip(cycles)
            .map(|((_, src, dst, len, class), cycle)| TraceRecord {
                cycle,
                src: NodeId::new(src),
                dst: NodeId::new(dst),
                len,
                class: CLASSES[class],
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn write_then_read_then_replay_is_the_identity(records in records_strategy()) {
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        let parsed = read_trace(&buf[..]).unwrap();
        prop_assert_eq!(&parsed, &records);
        // The parsed trace replays to exactly the recorded request stream.
        let mut replay = TraceReplay::new("roundtrip", parsed);
        let mut replayed = Vec::new();
        let horizon = records.last().map_or(0, |r| r.cycle);
        for cycle in 0..=horizon {
            replay.generate(cycle, &mut |req| replayed.push((cycle, req)));
        }
        prop_assert_eq!(replayed.len(), records.len());
        for ((cycle, req), rec) in replayed.iter().zip(&records) {
            prop_assert_eq!(*cycle, rec.cycle);
            prop_assert_eq!(req.src, rec.src);
            prop_assert_eq!(req.dst, rec.dst);
            prop_assert_eq!(req.len, rec.len);
            prop_assert_eq!(req.class, rec.class);
        }
        prop_assert!(!replay.has_pending_work());
    }

    #[test]
    fn interleaved_comments_and_whitespace_do_not_change_the_parse(
        records in records_strategy(),
        // One decoration slot per possible line position; cycled over.
        decorations in prop::collection::vec(0usize..4, 1..8),
    ) {
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        let plain = String::from_utf8(buf).unwrap();
        let mut decorated = String::new();
        for (i, line) in plain.lines().enumerate() {
            match decorations[i % decorations.len()] {
                0 => decorated.push_str("# a comment\n"),
                1 => decorated.push('\n'),
                2 => decorated.push_str("   \n"),
                _ => {}
            }
            // Leading/trailing whitespace on data lines must be ignored.
            decorated.push_str("  ");
            decorated.push_str(line);
            decorated.push_str(" \n");
        }
        let parsed = read_trace(decorated.as_bytes()).unwrap();
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn corrupting_one_line_reports_that_line(
        records in records_strategy().prop_filter("need at least one record", |r| !r.is_empty()),
        corrupt in 0usize..64,
        kind in 0usize..4,
    ) {
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        let plain = String::from_utf8(buf).unwrap();
        // Line 1 is the header comment; data lines follow it.
        let target = 2 + corrupt % records.len();
        let corrupted: String = plain
            .lines()
            .enumerate()
            .map(|(i, line)| {
                let line = if i + 1 == target {
                    match kind {
                        0 => "not numbers at all".to_string(),
                        1 => line.rsplit_once(' ').map(|(head, _)| format!("{head} ZZ")).unwrap(),
                        2 => line.rsplit_once(' ').map(|(head, _)| head.to_string()).unwrap(),
                        _ => {
                            let mut f: Vec<&str> = line.split_whitespace().collect();
                            f[3] = "0"; // zero-length packet
                            f.join(" ")
                        }
                    }
                } else {
                    line.to_string()
                };
                line + "\n"
            })
            .collect();
        let err = read_trace(corrupted.as_bytes()).unwrap_err();
        prop_assert!(
            err.to_string().contains(&format!("line {target}")),
            "error {err} does not name line {target}"
        );
    }

    #[test]
    fn out_of_order_cycles_are_rejected(
        records in records_strategy().prop_filter("need two records", |r| r.len() >= 2),
        bump in 1u64..1000,
    ) {
        let mut shuffled = records;
        // Force a strict inversion between the first two records.
        shuffled[0].cycle = shuffled[1].cycle + bump;
        let mut buf = Vec::new();
        write_trace(&mut buf, &shuffled).unwrap();
        let err = read_trace(&buf[..]).unwrap_err();
        prop_assert!(err.to_string().contains("out of order"), "got: {err}");
    }
}
