//! Quickstart: compare the baseline router against the full pseudo-circuit
//! scheme on uniform-random traffic over an 8×8 mesh.
//!
//! Run with: `cargo run --release --example quickstart`

use noc_base::{RoutingPolicy, VaPolicy};
use noc_topology::Mesh;
use noc_traffic::{SyntheticPattern, SyntheticTraffic};
use pseudo_circuit::{ExperimentBuilder, Scheme};
use std::sync::Arc;

fn main() {
    let topo = Arc::new(Mesh::new(8, 8, 1));
    let builder = ExperimentBuilder::new(topo)
        .routing(RoutingPolicy::Xy)
        .va_policy(VaPolicy::Static)
        .phases(1_000, 5_000, 50_000)
        .seed(2010);

    println!("scheme        load  avg-latency  reduction  reuse%  bypass%");
    for load in [0.05, 0.15, 0.25] {
        let mut baseline_latency = None;
        for scheme in Scheme::paper_lineup() {
            let traffic = SyntheticTraffic::new(SyntheticPattern::UniformRandom, 8, 8, 5, load, 42);
            let report = builder.clone().scheme(scheme).run(Box::new(traffic));
            let base = *baseline_latency.get_or_insert(report.avg_latency);
            println!(
                "{:<13} {:<5.2} {:>10.2}  {:>8.1}%  {:>5.1}%  {:>6.1}%",
                scheme.to_string(),
                load,
                report.avg_latency,
                (1.0 - report.avg_latency / base) * 100.0,
                report.reusability() * 100.0,
                report.bypass_rate() * 100.0,
            );
        }
        println!();
    }
}
