//! Topology explorer: run the same CMP workload on mesh, concentrated mesh,
//! MECS and flattened butterfly, with and without pseudo-circuits — the
//! paper's §VII.A argument that the scheme is topology-independent.
//!
//! Run with: `cargo run --release --example topology_explorer`

use noc_base::{RoutingPolicy, VaPolicy};
use noc_topology::{average_min_hops, FlattenedButterfly, Mecs, Mesh, SharedTopology};
use noc_traffic::BenchmarkProfile;
use pseudo_circuit::experiment::cmp_traffic_for;
use pseudo_circuit::{ExperimentBuilder, Scheme};
use std::sync::Arc;

fn main() {
    let bench = *BenchmarkProfile::by_name("fma3d").expect("profile exists");
    let topologies: Vec<SharedTopology> = vec![
        Arc::new(Mesh::new(8, 8, 1)),
        Arc::new(Mesh::new(4, 4, 4)),
        Arc::new(Mecs::new(4, 4, 4)),
        Arc::new(FlattenedButterfly::new(4, 4, 4)),
    ];

    println!("topology      avg-hops  baseline  pseudo+ps+bb  gain");
    let mut mesh_baseline = None;
    for topo in topologies {
        let run = |scheme: Scheme| {
            ExperimentBuilder::new(topo.clone())
                .routing(RoutingPolicy::Xy)
                .va_policy(VaPolicy::Static)
                .scheme(scheme)
                .phases(1_000, 15_000, 150_000)
                .run(Box::new(cmp_traffic_for(topo.as_ref(), bench, 11)))
        };
        let base = run(Scheme::baseline());
        let full = run(Scheme::pseudo_ps_bb());
        let reference = *mesh_baseline.get_or_insert(base.avg_latency);
        println!(
            "{:<13} {:>7.2}  {:>8.2}  {:>12.2}  {:>4.1}%   (vs mesh baseline: {:.1}%)",
            topo.name(),
            average_min_hops(topo.as_ref()),
            base.avg_latency,
            full.avg_latency,
            full.latency_reduction_vs(&base) * 100.0,
            (1.0 - full.avg_latency / reference) * 100.0,
        );
    }
    println!("\nthe pseudo-circuit gain appears on every topology (paper §VII.A);");
    println!("combining it with a hop-reducing topology compounds the reduction");
}
