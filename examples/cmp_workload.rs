//! CMP workload example: the paper's own evaluation substrate — a 32-core /
//! 32-bank chip multiprocessor on a 4×4 concentrated mesh with directory
//! coherence traffic and MSHR self-throttling — run against every router
//! configuration.
//!
//! Run with: `cargo run --release --example cmp_workload [benchmark]`
//! (default benchmark: fma3d; try `jbb` for skewed traffic)

use noc_base::{RoutingPolicy, VaPolicy};
use noc_topology::{Mesh, Topology as _};
use noc_traffic::BenchmarkProfile;
use pseudo_circuit::experiment::cmp_traffic_for;
use pseudo_circuit::{ExperimentBuilder, Scheme};
use std::sync::Arc;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fma3d".into());
    let Some(&bench) = BenchmarkProfile::by_name(&name) else {
        eprintln!("unknown benchmark {name:?}; available:");
        for p in BenchmarkProfile::suite() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    };

    let topo = Arc::new(Mesh::new(4, 4, 4));
    println!(
        "CMP: 32 cores + 32 L2 banks on {}, benchmark {}",
        topo.name(),
        bench.name
    );

    // The paper's strongest baseline: O1TURN + dynamic VA.
    let baseline = ExperimentBuilder::new(topo.clone())
        .routing(RoutingPolicy::O1Turn)
        .va_policy(VaPolicy::Dynamic)
        .scheme(Scheme::baseline())
        .phases(1_000, 20_000, 200_000)
        .run(Box::new(cmp_traffic_for(topo.as_ref(), bench, 7)));
    println!(
        "\nbaseline (O1TURN, dynamic VA): {:.2} cycles over {} packets",
        baseline.avg_latency, baseline.measured_delivered
    );

    println!("\nscheme        latency  reduction  reuse%  header-hit%  energy/flit");
    for scheme in Scheme::paper_lineup() {
        let report = ExperimentBuilder::new(topo.clone())
            .routing(RoutingPolicy::Xy)
            .va_policy(VaPolicy::Static)
            .scheme(scheme)
            .phases(1_000, 20_000, 200_000)
            .run(Box::new(cmp_traffic_for(topo.as_ref(), bench, 7)));
        let per_flit = report.energy_pj() / report.router_stats.flit_traversals.max(1) as f64;
        println!(
            "{:<13} {:>7.2}  {:>8.1}%  {:>5.1}%  {:>10.1}%  {:>8.2} pJ",
            scheme.to_string(),
            report.avg_latency,
            report.latency_reduction_vs(&baseline) * 100.0,
            report.reusability() * 100.0,
            report.router_stats.header_hit_rate() * 100.0,
            per_flit,
        );
    }
}
