//! Trace record & replay: mirrors the paper's methodology — extract a packet
//! trace from the CMP workload once, then replay the *identical* trace
//! through different router configurations for a perfectly controlled
//! comparison (closed-loop runs would adapt their injection to the router).
//!
//! Run with: `cargo run --release --example trace_replay [path]`
//! (optionally writes the trace to `path` in the line format)

use noc_base::{RoutingPolicy, VaPolicy};
use noc_topology::Mesh;
use noc_traffic::{trace, BenchmarkProfile, TraceRecorder, TraceReplay, TrafficModel};
use pseudo_circuit::experiment::cmp_traffic_for;
use pseudo_circuit::{ExperimentBuilder, Scheme};
use std::sync::Arc;

fn main() {
    let topo = Arc::new(Mesh::new(4, 4, 4));
    let bench = *BenchmarkProfile::by_name("equake").expect("profile exists");

    // Phase 1: record a trace by running the closed-loop CMP model through
    // the baseline router (responses react to real network timing).
    println!("recording equake trace through the baseline router...");
    let recorder = TraceRecorder::new(cmp_traffic_for(topo.as_ref(), bench, 3));
    let mut sim = ExperimentBuilder::new(topo.clone())
        .routing(RoutingPolicy::Xy)
        .va_policy(VaPolicy::Static)
        .scheme(Scheme::baseline())
        .build(Box::new(recorder));
    for _ in 0..20_000 {
        sim.step();
    }
    // The recorder lives inside the simulation; re-record standalone instead
    // for a self-contained trace (generation is deterministic by seed).
    let mut recorder = TraceRecorder::new(cmp_traffic_for(topo.as_ref(), bench, 3));
    let mut sink = |_r| {};
    for cycle in 0..20_000 {
        recorder.generate(cycle, &mut sink);
    }
    let (_, records) = recorder.into_parts();
    println!(
        "captured {} packet injections over 20k cycles",
        records.len()
    );

    if let Some(path) = std::env::args().nth(1) {
        let file = std::fs::File::create(&path).expect("create trace file");
        trace::write_trace(std::io::BufWriter::new(file), &records).expect("write trace");
        println!("trace written to {path}");
    }

    // Phase 2: replay the identical trace through every configuration.
    println!("\nscheme        latency  reduction  reuse%");
    let mut baseline = None;
    for scheme in Scheme::paper_lineup() {
        let replay = TraceReplay::new("equake-trace", records.clone());
        let report = ExperimentBuilder::new(topo.clone())
            .routing(RoutingPolicy::Xy)
            .va_policy(VaPolicy::Static)
            .scheme(scheme)
            .phases(1_000, 15_000, 150_000)
            .run(Box::new(replay));
        let base = *baseline.get_or_insert(report.avg_latency);
        println!(
            "{:<13} {:>7.2}  {:>8.1}%  {:>5.1}%",
            scheme.to_string(),
            report.avg_latency,
            (1.0 - report.avg_latency / base) * 100.0,
            report.reusability() * 100.0,
        );
    }
}
