//! Locality analysis: measures the two communication temporal localities of
//! the paper's Fig. 1 (end-to-end and crossbar connection) across the
//! benchmark suite, plus the resulting pseudo-circuit hit rates — the
//! motivation chain of the paper in one run.
//!
//! Run with: `cargo run --release --example locality_analysis`

use noc_base::{RoutingPolicy, VaPolicy};
use noc_topology::Mesh;
use noc_traffic::BenchmarkProfile;
use pseudo_circuit::experiment::cmp_traffic_for;
use pseudo_circuit::{ExperimentBuilder, Scheme};
use std::sync::Arc;

fn main() {
    let topo = Arc::new(Mesh::new(4, 4, 4));
    println!("benchmark      end-to-end  crossbar  reuse(flits)  header-hits");
    let (mut e2e, mut xbar, mut reuse, mut hits) = (0.0, 0.0, 0.0, 0.0);
    let suite = BenchmarkProfile::suite();
    for bench in suite {
        let report = ExperimentBuilder::new(topo.clone())
            .routing(RoutingPolicy::Xy)
            .va_policy(VaPolicy::Static)
            .scheme(Scheme::pseudo_ps_bb())
            .phases(1_000, 10_000, 100_000)
            .run(Box::new(cmp_traffic_for(topo.as_ref(), *bench, 21)));
        e2e += report.end_to_end_locality;
        xbar += report.xbar_locality();
        reuse += report.reusability();
        hits += report.router_stats.header_hit_rate();
        println!(
            "{:<14} {:>9.1}%  {:>7.1}%  {:>11.1}%  {:>10.1}%",
            bench.name,
            report.end_to_end_locality * 100.0,
            report.xbar_locality() * 100.0,
            report.reusability() * 100.0,
            report.router_stats.header_hit_rate() * 100.0,
        );
    }
    let n = suite.len() as f64;
    println!(
        "{:<14} {:>9.1}%  {:>7.1}%  {:>11.1}%  {:>10.1}%",
        "AVG",
        e2e / n * 100.0,
        xbar / n * 100.0,
        reuse / n * 100.0,
        hits / n * 100.0
    );
    println!("\ncrossbar-connection locality exceeds end-to-end locality — the");
    println!("headroom the pseudo-circuit scheme converts into reuse (paper Fig. 1)");
}
