//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! re-implements the (small) slice of proptest's API that the workspace's
//! property tests use: `proptest!`, strategies over ranges / tuples /
//! collections, `prop_map`, `prop_oneof!`, `Just`, `any`, the `prop_assert*`
//! family, and `ProptestConfig::with_cases`.
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! - sampling is deterministic per test (seeded from the test's name), so
//!   failures reproduce without a persistence file;
//! - there is no shrinking — a failing case panics with the original inputs
//!   (tests print their inputs through the ordinary assertion message).

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator used to drive strategies (splitmix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (typically the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        // Multiply-shift bounded sampling; bias is irrelevant for testing.
        (((self.next_u64() >> 11) as u128 * bound as u128) >> 53) as u64
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and adapters
// ---------------------------------------------------------------------------

/// A source of random values of one type.
///
/// Unlike upstream proptest there is no value tree: `generate` directly
/// produces the value for one test case.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, regenerating in their
    /// place. Upstream tracks a rejection quota; here a fixed retry cap
    /// keeps an over-strict predicate from looping forever.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.inner.generate(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive cases: {}",
            self.whence
        );
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! int_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                // span == 0 means the whole u64 domain: take any value.
                let offset = if span == 0 { rng.next_u64() } else { rng.below(span) };
                self.start().wrapping_add(offset as $t)
            }
        }
    )*};
}

int_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Values with a canonical "any value" strategy ([`any`]).
pub trait ArbitraryValue {
    /// Produces an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over the full domain of a type (see [`any`]).
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type: `any::<u64>()`, `any::<bool>()`, …
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Sub-modules mirroring proptest's namespace (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size specification for collection strategies: a fixed length or a
    /// half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace alias so `prop::collection::vec` resolves like upstream.
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Config and macros
// ---------------------------------------------------------------------------

/// Why a property-test case did not pass: rejected by a precondition
/// (`prop_assume!`) or failed outright.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy a precondition; it is skipped.
    Reject,
    /// The property failed.
    Fail(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Per-block configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to an early `return` of [`TestCaseError::Reject`], so it only
/// works inside `proptest!` bodies (which return `Result`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr,) => {
        $crate::prop_assume!($cond)
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Binds `name in strategy` argument lists inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    ($rng:ident,) => {};
    ($rng:ident, mut $name:ident in $strategy:expr) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strategy), &mut $rng);
    };
    ($rng:ident, $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
    };
    ($rng:ident, mut $name:ident in $strategy:expr, $($rest:tt)*) => {
        #[allow(unused_mut)]
        let mut $name = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__prop_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__prop_bind!($rng, $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $crate::__prop_bind!(rng, $($args)*);
                // The body runs in a `Result`-returning closure so `?` and
                // `prop_assume!` (early `return Err(Reject)`) both work.
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    Ok(()) | Err($crate::TestCaseError::Reject) => {}
                    Err(e) => panic!("property failed: {e}"),
                }
            }
        }
    )*};
}

/// Declares property tests: each `fn name(arg in strategy, …) { … }` becomes
/// a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_label() {
        let a: Vec<u64> = {
            let mut rng = TestRng::deterministic("x");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::deterministic("x");
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_arguments(x in 0u8..10, mut v in prop::collection::vec(0u32..5, 0..4)) {
            prop_assert!(x < 10);
            v.push(1);
            prop_assert!(!v.is_empty());
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            (0u16..10).prop_map(Some),
            Just(None),
        ]) {
            if let Some(x) = v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn assume_skips(a in 0u64..4, b in 0u64..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}
